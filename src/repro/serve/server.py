"""The asyncio simulation server: cache-first jobs over HTTP/NDJSON.

One event loop multiplexes every client: HTTP/1.1 is parsed by hand on
top of :func:`asyncio.start_server` (stdlib only — no web framework),
simulations run through the :class:`~repro.serve.workers.WorkerBridge`,
and results flow through the same content-addressed
:class:`~repro.lab.ResultCache` and :class:`~repro.lab.ResultStore`
that ``repro batch`` uses.  That shared substrate is the product story:
a job spec submitted by any user, any session, any day hashes to the
same content key, so the second identical submission — POST body equal,
cache warm — is answered in one round trip with **zero worker
dispatch**.

Routes (``Connection: close``; one request per connection):

=====================  ================================================
``POST /jobs``         submit a job spec; 200 + result on a cache hit,
                       202 + job id when queued, 429 over quota
``GET /jobs/{id}``     job status (plus result once done)
``GET /jobs/{id}/stream``  NDJSON frames: state, live metrics/trace,
                       terminal result/error/cancelled
``DELETE /jobs/{id}``  cooperative cancel (drops queued jobs instantly)
``GET /healthz``       liveness
``GET /stats``         sessions, queue depth, cache hit rate, workers
=====================  ================================================
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.lab.cache import NullCache, ResultCache
from repro.lab.jobs import JobCancelled
from repro.lab.store import ResultStore
from repro.serve.protocol import (
    MAX_BODY_BYTES,
    PROTOCOL_VERSION,
    TERMINAL_STATES,
    JobSubmission,
    ProtocolError,
    encode_json,
    ndjson_line,
    parse_submission,
    state_frame,
)
from repro.resilience.supervise import RetryPolicy
from repro.serve.session import QuotaExceeded, SessionManager, SessionQuota
from repro.serve.workers import CancelToken, JobExecutionError, WorkerBridge

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Frames buffered per job for late/slow stream consumers.
DEFAULT_STREAM_BUFFER = 4096


@dataclass
class JobRecord:
    """One submitted job's lifetime inside the server."""

    job_id: str
    submission: JobSubmission
    key: str
    session_id: str
    state: str = "queued"
    cached: bool = False
    result: Optional[dict] = None
    error: Optional[str] = None
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    frames: List[dict] = field(default_factory=list)
    frames_base: int = 0          # absolute index of frames[0]
    frames_dropped: int = 0
    update: asyncio.Event = field(default_factory=asyncio.Event)
    cancel: CancelToken = field(default_factory=CancelToken)
    attempts: List[str] = field(default_factory=list)  # per-retry diagnoses
    quarantined: bool = False     # failed with the retry budget exhausted

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def snapshot(self, with_result: bool = False) -> dict:
        doc: Dict[str, Any] = {
            "id": self.job_id,
            "key": self.key,
            "kind": self.submission.job.kind,
            "seed": self.submission.job.seed,
            "session": self.session_id,
            "state": self.state,
            "cached": self.cached,
        }
        if self.error is not None:
            doc["error"] = self.error
        if self.attempts:
            doc["retries"] = len(self.attempts)
        if self.quarantined:
            doc["quarantined"] = True
        if with_result and self.result is not None:
            doc["result"] = self.result
        return doc


class SimulationServer:
    """Long-lived simulation-as-a-service endpoint.

    Construct, ``await start()``, then either ``await serve_forever()``
    (the CLI path) or talk to ``host``/``port`` directly (tests embed
    the server in a side thread — see :mod:`repro.serve.testing`).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        worker_mode: str = "process",
        cache: Optional[ResultCache] = None,
        store: Optional[ResultStore] = None,
        quota: SessionQuota = SessionQuota(),
        max_queue_depth: int = 128,
        stream_buffer: int = DEFAULT_STREAM_BUFFER,
        retry_policy: Optional[RetryPolicy] = RetryPolicy(),
        job_deadline_s: Optional[float] = None,
        checkpoint_plan=None,
        retry_seed: int = 0,
    ):
        if job_deadline_s is not None and job_deadline_s <= 0:
            raise ValueError("job_deadline_s must be positive")
        self.host = host
        self.port = port
        self.cache = cache if cache is not None else NullCache()
        self.store = store
        self.sessions = SessionManager(quota)
        self.bridge = WorkerBridge(
            workers=workers, mode=worker_mode, checkpoint_plan=checkpoint_plan
        )
        self.jobs: Dict[str, JobRecord] = {}
        self.max_queue_depth = max_queue_depth
        self.stream_buffer = stream_buffer
        #: Supervision: infrastructure failures (worker death, deadline
        #: expiry) retry under this policy; ``None`` disables retries.
        self.retry_policy = retry_policy
        self.job_deadline_s = job_deadline_s
        self._retry_rng = random.Random(retry_seed)
        self.retries = 0
        self.quarantined = 0
        self.deadline_expired = 0
        self.served_from_cache = 0
        self.accepting = True
        self._seq = 0
        self._tasks: set = set()
        self._server: Optional[asyncio.base_events.Server] = None
        self._started_at = time.time()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.time()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting; optionally let in-flight jobs finish.

        With ``drain`` every queued and running job completes (and its
        result lands in the cache/store) before the workers close; the
        alternative cancels everything still pending.
        """
        self.accepting = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if not drain:
            for record in self.jobs.values():
                if not record.terminal:
                    self._cancel_record(record)
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self.bridge.close()

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------
    def _next_id(self, key: str) -> str:
        self._seq += 1
        return f"j{self._seq:05d}-{key[:8]}"

    def queue_depth(self) -> int:
        return sum(1 for r in self.jobs.values() if r.state == "queued")

    def stats(self) -> dict:
        jobs_by_state: Dict[str, int] = {}
        for record in self.jobs.values():
            jobs_by_state[record.state] = (
                jobs_by_state.get(record.state, 0) + 1
            )
        hits = getattr(self.cache, "hits", 0)
        misses = getattr(self.cache, "misses", 0)
        lookups = hits + misses
        return {
            "protocol": PROTOCOL_VERSION,
            "uptime_s": round(time.time() - self._started_at, 3),
            "accepting": self.accepting,
            "jobs": {"total": len(self.jobs), **dict(sorted(
                jobs_by_state.items()
            ))},
            "queue_depth": self.queue_depth(),
            "cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / lookups if lookups else 0.0,
                "served_from_cache": self.served_from_cache,
            },
            "workers": {
                "total": self.bridge.workers,
                "mode": self.bridge.mode,
                "busy": self.bridge.busy,
                "dispatched": self.bridge.dispatched,
                "utilization": round(self.bridge.utilization, 4),
            },
            "supervision": {
                "retries": self.retries,
                "quarantined": self.quarantined,
                "deadline_expired": self.deadline_expired,
                "deadline_s": self.job_deadline_s,
                "policy": (
                    self.retry_policy.to_dict()
                    if self.retry_policy is not None
                    else None
                ),
            },
            **self.sessions.stats(),
        }

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------
    def _push_frame(self, record: JobRecord, frame: dict) -> None:
        record.frames.append(frame)
        if len(record.frames) > self.stream_buffer:
            del record.frames[0]
            record.frames_base += 1
            record.frames_dropped += 1
        record.update.set()

    def _set_state(self, record: JobRecord, state: str) -> None:
        record.state = state
        self._push_frame(record, state_frame(record.snapshot()))

    def _finish(self, record: JobRecord, state: str) -> None:
        record.finished = time.time()
        self._set_state(record, state)
        self.sessions.release(record.session_id, record.job_id)

    def _cancel_record(self, record: JobRecord) -> bool:
        """Cooperative cancel; queued jobs drop (and free their slot) now."""
        if record.terminal:
            return False
        record.cancel.set()
        if record.state == "queued":
            self._finish(record, "cancelled")
        return True

    async def _run_record(self, record: JobRecord) -> None:
        await self.bridge.acquire()
        try:
            if record.terminal:      # cancelled while waiting for a slot
                return
            record.started = time.time()
            self.sessions.mark_running(record.session_id, record.job_id)
            self._set_state(record, "running")
            try:
                result = await self._execute_supervised(record)
            except JobCancelled:
                self._finish(record, "cancelled")
                return
            except JobExecutionError as exc:
                record.error = str(exc)
                self._finish(record, "failed")
                return
            if record.cancel.is_set():
                self._finish(record, "cancelled")
                return
            record.result = result
            self.cache.put(record.key, result)
            if self.store is not None:
                self.store.append(record.submission.job, result, cached=False)
            self._finish(record, "done")
        finally:
            self.bridge.release()

    async def _execute_supervised(self, record: JobRecord) -> dict:
        """``bridge.execute`` wrapped in the supervision policy.

        Infrastructure failures — the worker process dying without a
        result, or the per-job wall-clock deadline expiring — retry
        with seeded exponential backoff up to the policy budget (each
        retry of a checkpointing job resumes from its last capsule).
        A runner exception fails fast: it is deterministic, so every
        retry would hit it again.  An exhausted budget raises a
        :class:`JobExecutionError` with ``record.quarantined`` set.
        """
        policy = self.retry_policy
        max_attempts = policy.max_attempts if policy is not None else 1
        attempt = 0
        while True:
            if record.cancel.is_set():
                raise JobCancelled()
            attempt += 1
            # One cancel token per attempt: the deadline fires only this
            # attempt's token (so the next attempt starts clean), while
            # a client DELETE on record.cancel propagates into whichever
            # attempt is live.
            attempt_cancel = CancelToken()
            record.cancel.add_callback(attempt_cancel.set)
            task = asyncio.ensure_future(
                self.bridge.execute(
                    record.submission,
                    lambda frame: self._push_frame(record, frame),
                    attempt_cancel,
                )
            )
            failure: Optional[str] = None
            try:
                if self.job_deadline_s is None:
                    return await asyncio.shield(task)
                return await asyncio.wait_for(
                    asyncio.shield(task), self.job_deadline_s
                )
            except asyncio.TimeoutError:
                # Deadline: cooperative cancel of this attempt first
                # (checkpoint chunk boundaries and observation frames
                # both check it), with the bridge's terminate fallback
                # behind it; then wait for the attempt to settle.
                self.deadline_expired += 1
                attempt_cancel.set()
                try:
                    # The job can still beat the grace period — a result
                    # that arrives late is a result, not a failure.
                    return await task
                except (JobCancelled, JobExecutionError):
                    failure = (
                        f"exceeded the {self.job_deadline_s:g}s "
                        "wall-clock deadline"
                    )
            except JobCancelled:
                raise  # client DELETE — not a failure, not retried
            except JobExecutionError as exc:
                if not exc.worker_died:
                    raise
                failure = str(exc)

            # -------- retriable infrastructure failure --------
            record.attempts.append(f"attempt {attempt}: {failure}")
            if record.cancel.is_set():
                raise JobCancelled()
            if attempt >= max_attempts:
                record.quarantined = True
                self.quarantined += 1
                raise JobExecutionError(
                    f"quarantined after {attempt} attempt(s): {failure}"
                )
            self.retries += 1
            delay = (
                policy.delay_s(attempt, self._retry_rng)
                if policy is not None
                else 0.0
            )
            self._push_frame(
                record,
                {
                    "type": "retry",
                    "attempt": attempt,
                    "error": failure,
                    "backoff_s": round(delay, 4),
                },
            )
            if delay > 0:
                await asyncio.sleep(delay)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        try:
            try:
                method, path, headers, body = await self._read_request(
                    reader
                )
            except ProtocolError as exc:
                await self._respond_error(writer, exc.status, exc.message)
                return
            try:
                await self._route(method, path, headers, body, writer)
            except ProtocolError as exc:
                await self._respond_error(writer, exc.status, exc.message)
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                BrokenPipeError,
            ):
                pass  # client went away mid-response
            except Exception as exc:  # noqa: BLE001 — last-resort 500
                await self._respond_error(
                    writer, 500, f"{type(exc).__name__}: {exc}"
                )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader
    ) -> Tuple[str, str, Dict[str, str], bytes]:
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=30.0
            )
        except asyncio.TimeoutError:
            raise ProtocolError(400, "timed out reading request") from None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ProtocolError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) > 64 or len(line) > 8192:
                raise ProtocolError(400, "oversized request headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > MAX_BODY_BYTES:
            raise ProtocolError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method, path, headers, body

    def _write_head(
        self, writer, status: int, content_type: str, extra=()
    ) -> None:
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            "Connection: close",
        ]
        lines.extend(f"{k}: {v}" for k, v in extra)
        writer.write(("\r\n".join(lines) + "\r\n").encode("latin-1"))

    async def _respond_json(
        self, writer, status: int, doc: dict, extra=()
    ) -> None:
        body = encode_json(doc) + b"\n"
        self._write_head(
            writer,
            status,
            "application/json",
            [("Content-Length", str(len(body))), *extra],
        )
        writer.write(b"\r\n" + body)
        await writer.drain()

    async def _respond_error(self, writer, status: int, message: str) -> None:
        try:
            await self._respond_json(
                writer, status, {"error": message, "status": status}
            )
        except (ConnectionError, BrokenPipeError):
            pass

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(self, method, path, headers, body, writer) -> None:
        if path == "/healthz":
            if method != "GET":
                raise ProtocolError(405, "healthz is GET-only")
            await self._respond_json(
                writer, 200, {"status": "ok", "protocol": PROTOCOL_VERSION}
            )
            return
        if path == "/stats":
            if method != "GET":
                raise ProtocolError(405, "stats is GET-only")
            await self._respond_json(writer, 200, self.stats())
            return
        if path == "/jobs":
            if method != "POST":
                raise ProtocolError(405, "submit jobs with POST /jobs")
            await self._handle_submit(headers, body, writer)
            return
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if rest.endswith("/stream"):
                job_id, stream = rest[: -len("/stream")], True
            else:
                job_id, stream = rest, False
            record = self.jobs.get(job_id)
            if record is None:
                raise ProtocolError(404, f"no such job {job_id!r}")
            if stream:
                if method != "GET":
                    raise ProtocolError(405, "stream is GET-only")
                await self._handle_stream(record, writer)
            elif method == "GET":
                await self._respond_json(
                    writer, 200, record.snapshot(with_result=True)
                )
            elif method == "DELETE":
                changed = self._cancel_record(record)
                await self._respond_json(
                    writer,
                    200,
                    {
                        **record.snapshot(),
                        "cancelling": changed and not record.terminal,
                    },
                )
            else:
                raise ProtocolError(405, "use GET or DELETE on a job")
            return
        raise ProtocolError(404, f"no route for {path!r}")

    # ------------------------------------------------------------------
    async def _handle_submit(self, headers, body, writer) -> None:
        submission = parse_submission(body)
        session_id = headers.get("x-session", "default") or "default"
        key = submission.job.key

        hit = self.cache.get(key)
        if hit is not None:
            # Cache-first: identical spec, zero compute, no quota charge.
            self.served_from_cache += 1
            self.sessions.record_cache_hit(session_id)
            record = JobRecord(
                job_id=self._next_id(key),
                submission=submission,
                key=key,
                session_id=session_id,
                state="done",
                cached=True,
                result=hit,
            )
            record.finished = record.created
            self.jobs[record.job_id] = record
            if self.store is not None:
                self.store.append(submission.job, hit, cached=True)
            await self._respond_json(
                writer, 200, record.snapshot(with_result=True)
            )
            return

        if not self.accepting:
            raise ProtocolError(503, "server is draining; not accepting jobs")
        if self.queue_depth() >= self.max_queue_depth:
            await self._respond_json(
                writer,
                429,
                {"error": "server queue is full", "status": 429},
                extra=[("Retry-After", "1")],
            )
            return

        job_id = self._next_id(key)
        try:
            self.sessions.admit(session_id, submission.job, job_id)
        except QuotaExceeded as exc:
            await self._respond_json(
                writer,
                429,
                {"error": exc.message, "status": 429},
                extra=[("Retry-After", f"{exc.retry_after:g}")],
            )
            return

        record = JobRecord(
            job_id=job_id,
            submission=submission,
            key=key,
            session_id=session_id,
        )
        self.jobs[job_id] = record
        task = asyncio.get_running_loop().create_task(
            self._run_record(record)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        await self._respond_json(writer, 202, record.snapshot())

    # ------------------------------------------------------------------
    async def _handle_stream(self, record: JobRecord, writer) -> None:
        self._write_head(writer, 200, "application/x-ndjson")
        writer.write(b"\r\n")
        writer.write(ndjson_line(state_frame(record.snapshot())))
        await writer.drain()

        pos = record.frames_base
        while True:
            end = record.frames_base + len(record.frames)
            if pos < record.frames_base:
                pos = record.frames_base  # consumer outran the buffer
            while pos < end:
                frame = record.frames[pos - record.frames_base]
                writer.write(ndjson_line(frame))
                pos += 1
            await writer.drain()
            if record.terminal:
                break
            record.update.clear()
            if record.frames_base + len(record.frames) > pos or (
                record.terminal
            ):
                continue
            await record.update.wait()

        if record.state == "done":
            final = {
                "type": "result",
                **record.snapshot(),
                "result": record.result,
            }
        elif record.state == "failed":
            final = {"type": "error", **record.snapshot()}
        else:
            final = {"type": "cancelled", **record.snapshot()}
        writer.write(ndjson_line(final))
        await writer.drain()
