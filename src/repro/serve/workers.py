"""The worker bridge: lab jobs executed off the event loop.

The server core is a single asyncio loop; simulations are CPU-bound
Python.  :class:`WorkerBridge` is the seam between the two — a bounded
pool of worker slots that executes :class:`repro.lab.Job` specs through
the unmodified :func:`repro.lab.run_job` path (so a served result is
byte-identical to a ``repro batch`` result) while relaying live
observation frames back to the loop.

Two interchangeable modes:

``process`` (the deployment default)
    one ``multiprocessing.Process`` per running job.  The child builds
    a :class:`repro.obs.QueueSink` whose ``forward`` pushes frames into
    an ``mp.Queue``; a reader thread in the server process relays them
    onto the event loop.  Cancellation is cooperative first (an
    ``mp.Event`` checked at every observation boundary raises
    :class:`~repro.lab.jobs.JobCancelled` inside the child) with a
    ``terminate()`` fallback after a grace period, so even a job with
    no observation hooks cannot outlive its DELETE.

``thread`` (tests, benchmarks, single-tenant serving)
    a ``ThreadPoolExecutor`` in-process — no fork/spawn latency, and
    job kinds registered by the host process (e.g. test fixtures) are
    visible to the workers.  Cancellation is cooperative only.

Either way the bridge exposes the accounting the acceptance criteria
hang off: ``dispatched`` counts every job handed to a worker, so
"served from cache with zero worker dispatch" is a number, not a hope.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import queue as queue_mod
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional

from contextlib import ExitStack

from repro.lab.jobs import Job, JobCancelled, JobObserver, run_job
from repro.obs.sinks import QueueSink
from repro.obs.telemetry import Tracer, use_tracer
from repro.serve.protocol import JobSubmission

#: Seconds a cancelled process job gets to exit cooperatively before
#: the bridge terminates it.
CANCEL_GRACE_S = 2.0


class JobExecutionError(Exception):
    """A job raised inside its worker; the message is the diagnosis.

    ``worker_died`` distinguishes *infrastructure* failure (the child
    process exited without a terminal sentinel — killed, OOMed,
    segfaulted) from *application* failure (the runner raised).  The
    server's supervision layer retries the former and fails the latter
    fast: a deterministic runner bug would fail every retry anyway.
    """

    def __init__(self, message: str, worker_died: bool = False):
        super().__init__(message)
        self.worker_died = worker_died


class CancelToken:
    """A one-shot, thread-safe cancellation flag with callbacks."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._callbacks: List[Callable[[], None]] = []
        self._lock = threading.Lock()

    def set(self) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._event.set()
            callbacks = list(self._callbacks)
        for callback in callbacks:
            callback()

    def is_set(self) -> bool:
        return self._event.is_set()

    def add_callback(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on cancellation (immediately if already set)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn()


def _build_observer(
    submission: JobSubmission, forward: Callable[[dict], None]
) -> Optional[JobObserver]:
    """The JobObserver a submission's stream options ask for, if any."""
    stream = submission.stream
    if not stream.wants_observer:
        return None
    sink = QueueSink(forward=forward)
    return JobObserver(
        metrics_sink=sink if stream.metrics_interval else None,
        trace_sink=sink if stream.trace else None,
        metrics_interval=stream.metrics_interval,
    )


# ----------------------------------------------------------------------
# Process-mode child entry point (must be a module-level function so it
# pickles under any multiprocessing start method).
# ----------------------------------------------------------------------
def _process_entry(payload: dict, frames, cancel_event) -> None:
    import os

    from repro.resilience.checkpoint import (
        CheckpointPlan,
        use_cancel_event,
        use_checkpoint_plan,
    )

    job = Job(
        kind=payload["kind"],
        params=payload["params"],
        seed=payload["seed"],
        tags=tuple(payload["tags"]),
    )
    submission = JobSubmission(job=job, stream=payload["stream"])

    def forward(frame: dict) -> None:
        if cancel_event.is_set():
            raise JobCancelled()
        frames.put(frame)

    observer = _build_observer(submission, forward)
    ckpt = payload.get("checkpoint")
    plan = (
        CheckpointPlan(directory=ckpt[0], interval=ckpt[1])
        if ckpt is not None
        else None
    )
    trace = payload.get("trace")
    try:
        # The cancel event rides the resilience ContextVar too, so a
        # checkpointing runner honors DELETE/deadline at every chunk
        # boundary even when the job streams no observation frames.
        # The tracer (when the server propagated a trace) rides its own
        # ContextVar the same way: runner-side add_event() calls —
        # checkpoint saves, restore points — land on the worker span,
        # and finished spans travel home as frames.  A span frame must
        # never raise JobCancelled (that would turn the span *flush* in
        # the ExitStack unwind into a crash), so it bypasses forward().
        with ExitStack() as stack:
            stack.enter_context(use_cancel_event(cancel_event))
            stack.enter_context(use_checkpoint_plan(plan))
            if trace is not None:
                tracer = Tracer(
                    on_end=lambda s: frames.put(
                        {"type": "span", "span": s.to_dict()}
                    )
                )
                stack.enter_context(use_tracer(tracer))
                stack.enter_context(
                    tracer.span(
                        "worker.run",
                        trace_id=trace[0],
                        parent_id=trace[1],
                        attrs={"kind": job.kind, "pid": os.getpid()},
                    )
                )
            result = run_job(job, observer=observer)
    except JobCancelled:
        frames.put({"type": "__cancelled__"})
    except BaseException as exc:  # noqa: BLE001 — relayed, not swallowed
        frames.put(
            {"type": "__error__", "error": f"{type(exc).__name__}: {exc}"}
        )
    else:
        frames.put({"type": "__result__", "result": result})


class WorkerBridge:
    """A bounded pool executing job submissions for the server."""

    def __init__(
        self,
        workers: int = 2,
        mode: str = "process",
        loop: Optional[asyncio.AbstractEventLoop] = None,
        checkpoint_plan=None,
    ):
        if workers < 1:
            raise ValueError("need at least one worker slot")
        if mode not in ("process", "thread"):
            raise ValueError(f"unknown worker mode {mode!r}")
        self.workers = workers
        self.mode = mode
        #: Optional repro.resilience CheckpointPlan: process workers
        #: install it per job, so a retried job resumes from its last
        #: capsule instead of recomputing from cycle zero.
        self.checkpoint_plan = checkpoint_plan
        self._loop = loop
        self._slots = asyncio.Semaphore(workers)
        self._pool: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-serve"
            )
            if mode == "thread"
            else None
        )
        self.busy = 0
        self.dispatched = 0
        # Live child processes (process mode), for supervision and the
        # chaos harness: what could be SIGKILLed right now?
        self._procs: set = set()
        self._procs_lock = threading.Lock()

    # ------------------------------------------------------------------
    def active_pids(self) -> List[int]:
        """PIDs of worker processes currently running a job.

        Empty in thread mode.  The chaos harness aims its SIGKILLs
        here; tests use it to wait for a job to actually be on-CPU.
        """
        with self._procs_lock:
            return sorted(
                p.pid for p in self._procs
                if p.pid is not None and p.is_alive()
            )

    # ------------------------------------------------------------------
    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        return self._loop

    @property
    def utilization(self) -> float:
        return self.busy / self.workers

    async def acquire(self) -> None:
        await self._slots.acquire()

    def release(self) -> None:
        self._slots.release()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    async def execute(
        self,
        submission: JobSubmission,
        emit: Callable[[dict], None],
        cancel: CancelToken,
        trace: Optional[tuple] = None,
    ) -> dict:
        """Run one admitted submission in a worker and return its result.

        ``emit`` receives observation frames on the event loop thread.
        ``trace`` is an optional ``(trace_id, parent_span_id)`` pair:
        when set, the worker runs under a ``worker.run`` span parented
        to it, and finished spans come back through ``emit`` as
        ``{"type": "span", ...}`` frames.  Raises
        :class:`~repro.lab.jobs.JobCancelled` when ``cancel`` fired,
        :class:`JobExecutionError` when the runner raised.  The caller
        has already acquired a slot via :meth:`acquire`.
        """
        self.busy += 1
        self.dispatched += 1
        try:
            if self.mode == "thread":
                return await self._execute_thread(
                    submission, emit, cancel, trace
                )
            return await self._execute_process(
                submission, emit, cancel, trace
            )
        finally:
            self.busy -= 1

    # ------------------------------------------------------------------
    async def _execute_thread(self, submission, emit, cancel, trace) -> dict:
        loop = self.loop

        def forward(frame: dict) -> None:
            if cancel.is_set():
                raise JobCancelled()
            loop.call_soon_threadsafe(emit, frame)

        observer = _build_observer(submission, forward)

        def work() -> dict:
            if trace is None:
                return run_job(submission.job, observer=observer)
            # Same span relay as process mode (span frames through
            # emit), so the server ingests worker spans identically in
            # both modes.  Flushing a span never checks cancel: the
            # span of a cancelled job must still make it home.
            tracer = Tracer(
                on_end=lambda s: loop.call_soon_threadsafe(
                    emit, {"type": "span", "span": s.to_dict()}
                )
            )
            with use_tracer(tracer), tracer.span(
                "worker.run",
                trace_id=trace[0],
                parent_id=trace[1],
                attrs={"kind": submission.job.kind},
            ):
                return run_job(submission.job, observer=observer)

        try:
            return await loop.run_in_executor(self._pool, work)
        except JobCancelled:
            raise
        except Exception as exc:
            raise JobExecutionError(
                f"{type(exc).__name__}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    async def _execute_process(self, submission, emit, cancel, trace) -> dict:
        loop = self.loop
        ctx = multiprocessing.get_context()
        frames: multiprocessing.Queue = ctx.Queue()
        cancel_event = ctx.Event()
        plan = self.checkpoint_plan
        payload = {
            "kind": submission.job.kind,
            "params": dict(submission.job.params),
            "seed": submission.job.seed,
            "tags": list(submission.job.tags),
            "stream": submission.stream,
            "checkpoint": (
                (plan.directory, plan.interval) if plan is not None else None
            ),
            "trace": tuple(trace) if trace is not None else None,
        }
        proc = ctx.Process(
            target=_process_entry,
            args=(payload, frames, cancel_event),
            daemon=True,
        )
        proc.start()
        with self._procs_lock:
            self._procs.add(proc)

        def on_cancel() -> None:
            cancel_event.set()
            timer = threading.Timer(
                CANCEL_GRACE_S,
                lambda: proc.terminate() if proc.is_alive() else None,
            )
            timer.daemon = True
            timer.start()

        cancel.add_callback(on_cancel)

        future: asyncio.Future = loop.create_future()

        def resolve(fn: Callable[[], None]) -> None:
            loop.call_soon_threadsafe(
                lambda: fn() if not future.done() else None
            )

        def reader() -> None:
            try:
                while True:
                    try:
                        frame = frames.get(timeout=0.2)
                    except queue_mod.Empty:
                        if proc.is_alive():
                            continue
                        # Child died without a terminal sentinel:
                        # terminated by cancel, or crashed outright.
                        if cancel.is_set():
                            resolve(
                                lambda: future.set_exception(JobCancelled())
                            )
                        else:
                            resolve(
                                lambda: future.set_exception(
                                    JobExecutionError(
                                        "worker process died "
                                        f"(exitcode {proc.exitcode})",
                                        worker_died=True,
                                    )
                                )
                            )
                        return
                    kind = frame.get("type")
                    if kind == "__result__":
                        result = frame["result"]
                        resolve(lambda: future.set_result(result))
                        return
                    if kind == "__cancelled__":
                        resolve(lambda: future.set_exception(JobCancelled()))
                        return
                    if kind == "__error__":
                        error = frame["error"]
                        resolve(
                            lambda: future.set_exception(
                                JobExecutionError(error)
                            )
                        )
                        return
                    loop.call_soon_threadsafe(emit, frame)
            finally:
                proc.join(timeout=5.0)
                with self._procs_lock:
                    self._procs.discard(proc)
                frames.close()

        thread = threading.Thread(
            target=reader, name="repro-serve-reader", daemon=True
        )
        thread.start()
        try:
            return await future
        finally:
            if proc.is_alive() and cancel.is_set():
                proc.terminate()
