"""GALS synchronization and voltage-frequency islands (Section 4.3)."""

from repro.gals.clocking import (
    ClockDomain,
    ClockingComparison,
    GalsPartition,
    SynchronizerKind,
    SynchronizerModel,
    clock_tree_power_mw,
    compare_clocking,
)
from repro.gals.vfi import (
    DEFAULT_LADDER,
    OperatingPoint,
    VoltageFrequencyIsland,
    assign_operating_points,
    island_power_mw,
    vfi_savings,
)

__all__ = [
    "ClockDomain",
    "ClockingComparison",
    "GalsPartition",
    "SynchronizerKind",
    "SynchronizerModel",
    "clock_tree_power_mw",
    "compare_clocking",
    "DEFAULT_LADDER",
    "OperatingPoint",
    "VoltageFrequencyIsland",
    "assign_operating_points",
    "island_power_mw",
    "vfi_savings",
]
