"""GALS synchronization schemes over the NoC backbone.

Section 4.3: "a variety of Globally Asynchronous Locally Synchronous
(GALS) chip design paradigms have been proposed.  NoCs offer a natural
backbone for the implementation of such approaches ... Among others,
fully asynchronous communication [35] and pausible clocking [24] have
been proposed and demonstrated."

We model the three standard clock-domain-crossing adapters with their
latency/area/energy penalties, a clock-domain partition over a
topology, and the chip-level clock-power comparison (a global clock
tree spanning the die versus small per-island trees) that motivates
GALS at scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.physical.technology import TechnologyLibrary
from repro.topology.graph import NodeKind, RoutingTable, Topology


class SynchronizerKind(Enum):
    """Clock-domain-crossing adapter styles (Section 4.3)."""

    MESOCHRONOUS = "mesochronous"   # same frequency, unknown phase
    PAUSIBLE = "pausible"           # locally stoppable clocks [24]
    ASYNC_FIFO = "async_fifo"       # fully asynchronous handshake [35]


@dataclass(frozen=True)
class SynchronizerModel:
    """Penalties of one adapter style."""

    kind: SynchronizerKind
    latency_cycles: float        # added per crossing (average)
    area_gates: float            # gate-equivalents per link adapter
    energy_fj_per_flit: float    # per flit crossing

    @staticmethod
    def of(kind: SynchronizerKind) -> "SynchronizerModel":
        return _SYNCHRONIZERS[kind]


_SYNCHRONIZERS = {
    SynchronizerKind.MESOCHRONOUS: SynchronizerModel(
        SynchronizerKind.MESOCHRONOUS,
        latency_cycles=1.5, area_gates=420.0, energy_fj_per_flit=350.0,
    ),
    SynchronizerKind.PAUSIBLE: SynchronizerModel(
        SynchronizerKind.PAUSIBLE,
        latency_cycles=2.0, area_gates=560.0, energy_fj_per_flit=300.0,
    ),
    SynchronizerKind.ASYNC_FIFO: SynchronizerModel(
        SynchronizerKind.ASYNC_FIFO,
        latency_cycles=2.5, area_gates=900.0, energy_fj_per_flit=500.0,
    ),
}


@dataclass(frozen=True)
class ClockDomain:
    """One synchronous island."""

    name: str
    frequency_hz: float
    members: Tuple[str, ...]  # switch/core names in this domain

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if not self.members:
            raise ValueError(f"domain {self.name!r} has no members")


class GalsPartition:
    """Assignment of every topology node to a clock domain."""

    def __init__(self, topology: Topology, domains: Sequence[ClockDomain],
                 synchronizer: SynchronizerKind = SynchronizerKind.MESOCHRONOUS):
        self.topology = topology
        self.domains = list(domains)
        self.synchronizer = SynchronizerModel.of(synchronizer)
        self._domain_of: Dict[str, str] = {}
        for domain in domains:
            for member in domain.members:
                if member not in topology:
                    raise KeyError(f"domain member {member!r} not in topology")
                if member in self._domain_of:
                    raise ValueError(f"{member!r} assigned to two domains")
                self._domain_of[member] = domain.name
        missing = [
            n for n in (topology.switches + topology.cores)
            if n not in self._domain_of
        ]
        if missing:
            raise ValueError(f"nodes without a clock domain: {missing[:4]}...")

    # ------------------------------------------------------------------
    def domain_of(self, node: str) -> str:
        return self._domain_of[node]

    def crossing_links(self) -> List[Tuple[str, str]]:
        """Links whose endpoints live in different domains."""
        return [
            (src, dst)
            for src, dst in self.topology.links
            if self._domain_of[src] != self._domain_of[dst]
        ]

    def crossings_on_route(self, table: RoutingTable, src: str, dst: str) -> int:
        route = table.route(src, dst)
        return sum(
            1
            for a, b in route.links()
            if self._domain_of[a] != self._domain_of[b]
        )

    def added_latency_cycles(self, table: RoutingTable, src: str, dst: str) -> float:
        """Synchronizer latency a packet pays on this route."""
        return self.crossings_on_route(table, src, dst) * self.synchronizer.latency_cycles

    def adapter_area_gates(self) -> float:
        return len(self.crossing_links()) * self.synchronizer.area_gates

    def annotate_topology(self) -> Topology:
        """A copy of the topology with synchronizer latency built in.

        Every domain-crossing link gains pipeline stages covering the
        adapter's latency, so the cycle-accurate simulator prices the
        crossings without knowing about clock domains — the "timing
        adaptation features natively in the on-chip communication
        framework" of Section 4.3.
        """
        import math

        extra = math.ceil(self.synchronizer.latency_cycles)
        out = Topology(f"{self.topology.name}-gals", flit_width=self.topology.flit_width)
        for sw in self.topology.switches:
            out.add_switch(sw, **{
                k: v for k, v in self.topology.node_attrs(sw).items()
                if k != "kind"
            })
        for core in self.topology.cores:
            out.add_core(core, **{
                k: v for k, v in self.topology.node_attrs(core).items()
                if k != "kind"
            })
        for src, dst in self.topology.links:
            attrs = self.topology.link_attrs(src, dst)
            stages = attrs.pipeline_stages
            if self._domain_of[src] != self._domain_of[dst]:
                stages += extra
            out.add_link(
                src, dst,
                length_mm=attrs.length_mm,
                pipeline_stages=stages,
                width_bits=attrs.width_bits,
                bidirectional=False,
            )
        return out


# ----------------------------------------------------------------------
# Chip-level clock distribution power
# ----------------------------------------------------------------------
# Clock tree wiring capacitance scales with the spanned area; sinks add
# their own load.  Constants calibrated to put a ~100 mm^2 65 nm global
# clock in the multi-watt range, consistent with the "power cost ...
# of global clock distribution in large chips" motivating GALS.
_CLOCK_WIRE_FF_PER_MM2 = 900.0
_CLOCK_SINK_FF = 1.3


def clock_tree_power_mw(
    area_mm2: float,
    num_sinks: int,
    frequency_hz: float,
    tech: TechnologyLibrary,
) -> float:
    """Dynamic power of one clock tree spanning ``area_mm2``."""
    if area_mm2 < 0 or num_sinks < 0:
        raise ValueError("area and sinks must be non-negative")
    cap_ff = _CLOCK_WIRE_FF_PER_MM2 * area_mm2 + _CLOCK_SINK_FF * num_sinks
    return cap_ff * 1e-15 * tech.vdd**2 * frequency_hz * 1e3


@dataclass
class ClockingComparison:
    """Global-synchronous vs GALS clock power."""

    global_clock_mw: float
    gals_clock_mw: float
    adapter_overhead_mw: float

    @property
    def gals_total_mw(self) -> float:
        return self.gals_clock_mw + self.adapter_overhead_mw

    @property
    def savings_fraction(self) -> float:
        if self.global_clock_mw == 0:
            return 0.0
        return 1.0 - self.gals_total_mw / self.global_clock_mw


def compare_clocking(
    die_area_mm2: float,
    island_areas_mm2: Sequence[float],
    island_frequencies_hz: Sequence[float],
    sinks_per_island: Sequence[int],
    crossing_flits_per_s: float,
    synchronizer: SynchronizerKind,
    tech: TechnologyLibrary,
    global_frequency_hz: Optional[float] = None,
) -> ClockingComparison:
    """The GALS trade: small island trees + adapters vs one global tree.

    The global-synchronous reference clocks the whole die at the fastest
    island's frequency (it must serve the most demanding block); GALS
    clocks each island at its own rate and pays synchronizer energy on
    the crossing traffic.
    """
    if len(island_areas_mm2) != len(island_frequencies_hz) or len(
        island_areas_mm2
    ) != len(sinks_per_island):
        raise ValueError("island vectors must have equal length")
    if not island_areas_mm2:
        raise ValueError("need at least one island")
    f_global = global_frequency_hz or max(island_frequencies_hz)
    total_sinks = sum(sinks_per_island)
    global_mw = clock_tree_power_mw(die_area_mm2, total_sinks, f_global, tech)
    gals_mw = sum(
        clock_tree_power_mw(a, s, f, tech)
        for a, s, f in zip(island_areas_mm2, sinks_per_island, island_frequencies_hz)
    )
    sync = SynchronizerModel.of(synchronizer)
    adapters_mw = crossing_flits_per_s * sync.energy_fj_per_flit * 1e-12
    return ClockingComparison(
        global_clock_mw=global_mw,
        gals_clock_mw=gals_mw,
        adapter_overhead_mw=adapters_mw,
    )
