"""Voltage-frequency islands and DVFS over the NoC.

Section 6 lists VFI support as a tool-flow feature: "cores in an island
operate at the same frequency and voltage, while cores in different
islands can operate at different frequencies and voltages"; [24]
demonstrated "dynamic voltage and frequency scaling architecture for
units integration with a GALS NoC".

The model: each island picks an operating point from a discrete ladder;
dynamic power scales as C * V^2 * f and leakage roughly linearly with V.
Given per-island throughput requirements (as a fraction of the peak
frequency), :func:`assign_operating_points` picks the lowest-power
point meeting each requirement, and :func:`island_power_mw` aggregates
the comparison against running everything at the top point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class OperatingPoint:
    """One (voltage, frequency) pair of the DVFS ladder."""

    vdd: float
    frequency_hz: float

    def __post_init__(self) -> None:
        if self.vdd <= 0 or self.frequency_hz <= 0:
            raise ValueError("operating point must be positive")


# A 65 nm-flavoured ladder: frequency roughly linear in voltage here.
DEFAULT_LADDER: Tuple[OperatingPoint, ...] = (
    OperatingPoint(0.8, 400e6),
    OperatingPoint(0.9, 600e6),
    OperatingPoint(1.0, 800e6),
    OperatingPoint(1.1, 1000e6),
)


@dataclass(frozen=True)
class VoltageFrequencyIsland:
    """One island: its members and power coefficients."""

    name: str
    members: Tuple[str, ...]
    switched_cap_nf: float     # total switched capacitance at full activity
    leakage_mw_at_nominal: float = 0.1

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError(f"island {self.name!r} has no members")
        if self.switched_cap_nf <= 0:
            raise ValueError("switched capacitance must be positive")

    def power_mw(self, point: OperatingPoint, activity: float = 1.0) -> float:
        """P = a * C * V^2 * f + leakage(V)."""
        if not 0.0 <= activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")
        dynamic = (
            activity
            * self.switched_cap_nf
            * 1e-9
            * point.vdd**2
            * point.frequency_hz
            * 1e3
        )
        leakage = self.leakage_mw_at_nominal * (point.vdd / 1.0) ** 2
        return dynamic + leakage


def assign_operating_points(
    islands: Sequence[VoltageFrequencyIsland],
    required_frequency_hz: Dict[str, float],
    ladder: Sequence[OperatingPoint] = DEFAULT_LADDER,
) -> Dict[str, OperatingPoint]:
    """Lowest-power ladder point meeting each island's requirement."""
    if not ladder:
        raise ValueError("empty operating-point ladder")
    ordered = sorted(ladder, key=lambda p: p.frequency_hz)
    out: Dict[str, OperatingPoint] = {}
    for island in islands:
        need = required_frequency_hz.get(island.name)
        if need is None:
            raise KeyError(f"no requirement for island {island.name!r}")
        chosen = None
        for point in ordered:
            if point.frequency_hz >= need:
                chosen = point
                break
        if chosen is None:
            raise ValueError(
                f"island {island.name!r} needs {need / 1e6:.0f} MHz, above "
                f"the ladder maximum "
                f"{ordered[-1].frequency_hz / 1e6:.0f} MHz"
            )
        out[island.name] = chosen
    return out


def island_power_mw(
    islands: Sequence[VoltageFrequencyIsland],
    assignment: Dict[str, OperatingPoint],
    activity: float = 1.0,
) -> float:
    """Total power under a given operating-point assignment."""
    return sum(
        island.power_mw(assignment[island.name], activity) for island in islands
    )


def vfi_savings(
    islands: Sequence[VoltageFrequencyIsland],
    required_frequency_hz: Dict[str, float],
    ladder: Sequence[OperatingPoint] = DEFAULT_LADDER,
    activity: float = 1.0,
) -> Tuple[float, float, float]:
    """(single-domain mW, per-island mW, savings fraction).

    The single-domain reference runs every island at the point required
    by the *most demanding* island — the cost VFI eliminates.
    """
    per_island = assign_operating_points(islands, required_frequency_hz, ladder)
    vfi_mw = island_power_mw(islands, per_island, activity)
    top_need = max(required_frequency_hz[i.name] for i in islands)
    global_assignment = assign_operating_points(
        islands, {i.name: top_need for i in islands}, ladder
    )
    single_mw = island_power_mw(islands, global_assignment, activity)
    savings = 1.0 - vfi_mw / single_mw if single_mw > 0 else 0.0
    return single_mw, vfi_mw, savings
