"""Design-space exploration: the synthesis sweep of the Fig. 6 flow.

"Based on the specifications, the topology synthesis tool builds several
topologies with different switch counts and architectural parameters
... with each design point having different power, area and performance
values." (Section 6)

:class:`DesignSpaceExplorer` sweeps switch count, frequency and flit
width, adds the standard-topology baselines, and returns all points
plus the Pareto front.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.baselines import mesh_baseline, star_baseline
from repro.core.evaluate import DesignPoint
from repro.core.pareto import DEFAULT_OBJECTIVES, Objectives, pareto_front
from repro.core.spec import CommunicationSpec
from repro.core.synthesis import TopologySynthesizer
from repro.physical.floorplan import Floorplan
from repro.physical.technology import TechNode, TechnologyLibrary


@dataclass
class SweepResult:
    """Everything the exploration produced."""

    points: List[DesignPoint]
    front: List[DesignPoint]
    baselines: List[DesignPoint]

    @property
    def feasible_points(self) -> List[DesignPoint]:
        return [p for p in self.points if p.feasible]

    def best_by(self, objective: str) -> DesignPoint:
        feasible = self.feasible_points
        if not feasible:
            raise ValueError("no feasible design point")
        return min(feasible, key=lambda p: (getattr(p, objective), p.name))


class DesignSpaceExplorer:
    """Sweeps the synthesis knobs over one communication spec."""

    def __init__(
        self,
        spec: CommunicationSpec,
        tech: Optional[TechnologyLibrary] = None,
        floorplan: Optional[Floorplan] = None,
    ):
        self.spec = spec
        self.tech = tech or TechnologyLibrary.for_node(TechNode.NM_65)
        self.synthesizer = TopologySynthesizer(spec, self.tech, floorplan)

    def explore(
        self,
        switch_counts: Optional[Sequence[int]] = None,
        frequencies_hz: Sequence[float] = (400e6, 600e6, 800e6),
        flit_widths: Sequence[int] = (32,),
        include_baselines: bool = True,
        objectives: Objectives = DEFAULT_OBJECTIVES,
        parallel: bool = False,
        workers: Optional[int] = None,
        executor=None,
        cache=None,
        store=None,
    ) -> SweepResult:
        """Run the sweep; returns all points and the Pareto front.

        With ``parallel=True`` (or any of ``workers``/``executor``/
        ``cache``/``store`` set) the sweep is delegated to
        :mod:`repro.lab`: design points become content-addressed jobs
        executed by a worker pool, previously computed points are reused
        from ``cache``, and every result can be persisted to ``store``.
        The point list is byte-identical to the serial path.
        """
        if parallel or workers is not None or executor is not None \
                or cache is not None or store is not None:
            from repro.lab.sweeps import run_synthesis_sweep

            sweep, _ = run_synthesis_sweep(
                self.spec,
                switch_counts=switch_counts,
                frequencies_hz=frequencies_hz,
                flit_widths=flit_widths,
                include_baselines=include_baselines,
                tech_node=self.tech.node,
                floorplan=self.synthesizer.input_floorplan,
                objectives=objectives,
                workers=workers,
                executor=executor,
                cache=cache,
                store=store,
            )
            return sweep
        n = len(self.spec.core_names)
        if switch_counts is None:
            switch_counts = sorted({max(1, n // 4), max(2, n // 3),
                                    max(2, n // 2), max(2, (2 * n) // 3), n})
        points: List[DesignPoint] = []
        for width in flit_widths:
            for freq in frequencies_hz:
                for k in switch_counts:
                    if k < 1 or k > n:
                        continue
                    result = self.synthesizer.synthesize(
                        k, frequency_hz=freq, flit_width=width
                    )
                    points.append(result.design)
        baselines: List[DesignPoint] = []
        if include_baselines:
            for width in flit_widths:
                for freq in frequencies_hz:
                    baselines.append(
                        mesh_baseline(
                            self.spec,
                            self.synthesizer.evaluator,
                            frequency_hz=freq,
                            flit_width=width,
                        )
                    )
                    baselines.append(
                        star_baseline(
                            self.spec,
                            self.synthesizer.evaluator,
                            frequency_hz=freq,
                            flit_width=width,
                        )
                    )
        front = pareto_front(points, objectives)
        return SweepResult(points=points, front=front, baselines=baselines)
