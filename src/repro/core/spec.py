"""Communication specification — the tool-flow input (Fig. 6).

"The tool flow takes the application architecture and application
constraints as inputs.  The architecture specifications include the type
of core (master or slave), the kind of protocol supported.  The
application communication constraints include the average bandwidth of
communication between the different cores, average latency constraints,
hard QoS constraints on bandwidth and latency..." (Section 6)

:class:`CommunicationSpec` is that input bundle, with unit conversion
between the designer-facing MB/s and the architecture-facing
flits/cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.workloads import ApplicationWorkload


@dataclass(frozen=True)
class CoreSpec:
    """One IP core at the edge of the NoC."""

    name: str
    is_master: bool = True
    is_slave: bool = True
    protocol: str = "OCP"
    width_mm: float = 1.0
    height_mm: float = 1.0

    def __post_init__(self) -> None:
        if not (self.is_master or self.is_slave):
            raise ValueError(f"core {self.name!r} must be master, slave or both")
        if self.width_mm <= 0 or self.height_mm <= 0:
            raise ValueError(f"core {self.name!r} needs positive dimensions")


@dataclass(frozen=True)
class FlowSpec:
    """One communication flow with its constraints."""

    source: str
    destination: str
    bandwidth_mbps: float                  # average bandwidth, MB/s
    latency_constraint_ns: Optional[float] = None
    is_hard_realtime: bool = False         # needs a GT connection

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError("flow bandwidth must be positive")
        if self.latency_constraint_ns is not None and self.latency_constraint_ns <= 0:
            raise ValueError("latency constraint must be positive")
        if self.source == self.destination:
            raise ValueError("flow endpoints must differ")

    def flits_per_cycle(self, flit_width: int, frequency_hz: float) -> float:
        """Convert MB/s into flits/cycle at an operating point."""
        bits_per_s = self.bandwidth_mbps * 8e6
        return bits_per_s / (flit_width * frequency_hz)


class CommunicationSpec:
    """The complete synthesis input: cores, flows, global constraints."""

    def __init__(
        self,
        cores: Sequence[CoreSpec],
        flows: Sequence[FlowSpec],
        name: str = "soc",
    ):
        self.name = name
        self.cores: Dict[str, CoreSpec] = {}
        for core in cores:
            if core.name in self.cores:
                raise ValueError(f"duplicate core {core.name!r}")
            self.cores[core.name] = core
        self.flows: List[FlowSpec] = []
        for flow in flows:
            if flow.source not in self.cores:
                raise ValueError(f"flow source {flow.source!r} unknown")
            if flow.destination not in self.cores:
                raise ValueError(f"flow destination {flow.destination!r} unknown")
            self.flows.append(flow)

    # ------------------------------------------------------------------
    @property
    def core_names(self) -> List[str]:
        return list(self.cores)

    @property
    def total_bandwidth_mbps(self) -> float:
        return sum(f.bandwidth_mbps for f in self.flows)

    def bandwidth_between(self, a: str, b: str) -> float:
        """Undirected core-pair traffic (for partitioning), MB/s."""
        return sum(
            f.bandwidth_mbps
            for f in self.flows
            if (f.source, f.destination) in ((a, b), (b, a))
        )

    def flows_from(self, core: str) -> List[FlowSpec]:
        return [f for f in self.flows if f.source == core]

    def flow_rates_flits_per_cycle(
        self, flit_width: int, frequency_hz: float
    ) -> Dict[Tuple[str, str], float]:
        """All flows converted to flits/cycle at an operating point."""
        rates: Dict[Tuple[str, str], float] = {}
        for f in self.flows:
            key = (f.source, f.destination)
            rates[key] = rates.get(key, 0.0) + f.flits_per_cycle(
                flit_width, frequency_hz
            )
        return rates

    # ------------------------------------------------------------------
    @staticmethod
    def from_workload(
        workload: ApplicationWorkload,
        core_dims_mm: float = 1.0,
        hard_realtime: bool = False,
    ) -> "CommunicationSpec":
        """Build a spec from a bundled application workload."""
        cores = [
            CoreSpec(name, width_mm=core_dims_mm, height_mm=core_dims_mm)
            for name in workload.cores
        ]
        flows = [
            FlowSpec(
                f.source,
                f.destination,
                f.mb_per_s,
                latency_constraint_ns=f.latency_ns,
                is_hard_realtime=hard_realtime,
            )
            for f in workload.flows
        ]
        return CommunicationSpec(cores, flows, name=workload.name)

    def __repr__(self) -> str:
        return (
            f"CommunicationSpec({self.name!r}, cores={len(self.cores)}, "
            f"flows={len(self.flows)}, total={self.total_bandwidth_mbps:.0f} MB/s)"
        )
