"""Design verification: the sign-off checks of the tool flow.

Section 2 sets the requirement — "the synthesized topologies should be
free of routing and message-dependent deadlocks" — and Section 6 adds
run-time validation via generated simulation models.  The verifier runs:

1. **structural** — the topology connects every communicating pair and
   every flow has a route;
2. **deadlock** — the channel-dependency check over the actual routes;
3. **capacity** — no link loaded beyond its bandwidth, the switch
   frequency target is achievable;
4. **dynamic** — the generated simulation model replays the spec's
   flows and must deliver the offered bandwidth with a stable network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.arch.parameters import NocParameters
from repro.core.evaluate import DesignPoint
from repro.core.simgen import generate_simulation_model
from repro.core.spec import CommunicationSpec
from repro.topology.deadlock import check_routing_deadlock


@dataclass
class VerificationReport:
    """Outcome of all verification stages."""

    passed: bool
    failures: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    simulated_cycles: int = 0
    delivered_flits: int = 0
    offered_flits: int = 0
    measured_avg_latency: Optional[float] = None

    def __bool__(self) -> bool:
        return self.passed


def verify_design(
    design: DesignPoint,
    spec: CommunicationSpec,
    params: Optional[NocParameters] = None,
    sim_cycles: int = 3000,
    packet_size_flits: int = 4,
) -> VerificationReport:
    """Run every verification stage on one design point."""
    failures: List[str] = []
    warnings: List[str] = []

    # 1. structural --------------------------------------------------------
    for flow in spec.flows:
        if not design.routing_table.has_route(flow.source, flow.destination):
            failures.append(f"flow {flow.source}->{flow.destination} unrouted")
    try:
        design.topology.validate()
    except ValueError as exc:
        failures.append(f"topology: {exc}")

    # 2. deadlock ----------------------------------------------------------
    report = check_routing_deadlock(design.topology, design.routing_table)
    if not report.is_deadlock_free:
        failures.append(
            f"routing deadlock: witness cycle through {report.cycle[:4]}..."
        )

    # 3. capacity / timing ---------------------------------------------------
    if design.max_link_load > 1.0:
        failures.append(
            f"worst link loaded at {design.max_link_load:.0%} of capacity"
        )
    elif design.max_link_load > 0.8:
        warnings.append(
            f"worst link at {design.max_link_load:.0%} — little headroom"
        )
    if design.max_frequency_hz < design.frequency_hz:
        failures.append(
            f"switches top out at {design.max_frequency_hz / 1e6:.0f} MHz, "
            f"below the {design.frequency_hz / 1e6:.0f} MHz target"
        )
    failures.extend(
        f"latency constraint violated: {note}"
        for note in design.notes
        if "exceeds the" in note
    )

    # 4. dynamic -------------------------------------------------------------
    delivered = offered = cycles = 0
    measured_latency: Optional[float] = None
    if not failures:
        model = generate_simulation_model(
            design, spec, params, packet_size_flits=packet_size_flits
        )
        try:
            stats = model.run(sim_cycles, drain=True)
        except RuntimeError as exc:
            failures.append(f"simulation: {exc}")
        else:
            cycles = sim_cycles
            delivered = stats.flits_delivered
            offered = model.traffic.packets_offered * packet_size_flits
            if stats.packets_delivered:
                measured_latency = stats.latency().mean
            if delivered < offered:
                failures.append(
                    f"simulation delivered {delivered} of {offered} flits"
                )

    return VerificationReport(
        passed=not failures,
        failures=failures,
        warnings=warnings,
        simulated_cycles=cycles,
        delivered_flits=delivered,
        offered_flits=offered,
        measured_avg_latency=measured_latency,
    )
