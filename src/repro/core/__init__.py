"""The SunFloor / iNoCs-style NoC synthesis tool flow (Fig. 6)."""

from repro.core.spec import CommunicationSpec, CoreSpec, FlowSpec
from repro.core.mapping import Mapping, map_cores
from repro.core.evaluate import DesignEvaluator, DesignPoint, default_evaluator
from repro.core.synthesis import SynthesisResult, TopologySynthesizer
from repro.core.baselines import mesh_baseline, star_baseline
from repro.core.pareto import dominates, knee_point, pareto_front
from repro.core.sweep import DesignSpaceExplorer, SweepResult
from repro.core.netlist import Netlist, generate_netlist, to_verilog
from repro.core.simgen import SimulationModel, generate_simulation_model
from repro.core.verification import VerificationReport, verify_design
from repro.core.flow import FlowResult, NocDesignFlow
from repro.core.multi_usecase import (
    MultiUseCaseResult,
    envelope_spec,
    synthesize_multi_usecase,
)
from repro.core.specio import (
    load_spec,
    save_spec,
    spec_from_dict,
    spec_to_dict,
)
from repro.core.sunmap import STANDARD_FAMILIES, SunmapResult, select_topology
from repro.core.buffer_sizing import (
    PortBufferRequirement,
    size_buffers,
    sized_parameters,
    uniform_depth,
)

__all__ = [
    "CommunicationSpec",
    "CoreSpec",
    "FlowSpec",
    "Mapping",
    "map_cores",
    "DesignEvaluator",
    "DesignPoint",
    "default_evaluator",
    "SynthesisResult",
    "TopologySynthesizer",
    "mesh_baseline",
    "star_baseline",
    "dominates",
    "knee_point",
    "pareto_front",
    "DesignSpaceExplorer",
    "SweepResult",
    "Netlist",
    "generate_netlist",
    "to_verilog",
    "SimulationModel",
    "generate_simulation_model",
    "VerificationReport",
    "verify_design",
    "FlowResult",
    "MultiUseCaseResult",
    "envelope_spec",
    "synthesize_multi_usecase",
    "NocDesignFlow",
    "load_spec",
    "save_spec",
    "spec_from_dict",
    "spec_to_dict",
    "STANDARD_FAMILIES",
    "SunmapResult",
    "select_topology",
    "PortBufferRequirement",
    "size_buffers",
    "sized_parameters",
    "uniform_depth",
]
