"""The end-to-end NoC design tool flow — Fig. 6 of the paper.

One facade runs the whole iNoCs-style pipeline:

    spec (+ optional floorplan, technology)
      -> component characterization      (repro.physical)
      -> topology synthesis sweep        (repro.core.sweep)
      -> Pareto front                    (repro.core.pareto)
      -> chosen instance                 (knee point or user choice)
      -> RTL-style netlist               (repro.core.netlist)
      -> simulation model                (repro.core.simgen)
      -> verification                    (repro.core.verification)

"All this information is fed into the design toolchain ... From the set
of all Pareto optimal points, the designer can then choose a NoC
instance.  Then, the RTL of the topology is automatically generated.
The tools also generate simulation models (high level as well as RTL)
with traffic generators." (Section 6)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.arch.parameters import NocParameters
from repro.core.evaluate import DesignPoint
from repro.core.netlist import Netlist, generate_netlist, to_verilog
from repro.core.pareto import knee_point
from repro.core.simgen import SimulationModel, generate_simulation_model
from repro.core.spec import CommunicationSpec
from repro.core.sweep import DesignSpaceExplorer, SweepResult
from repro.core.verification import VerificationReport, verify_design
from repro.physical.floorplan import Floorplan
from repro.physical.technology import TechNode, TechnologyLibrary


@dataclass
class FlowResult:
    """Everything the tool flow hands back to the designer."""

    sweep: SweepResult
    chosen: DesignPoint
    netlist: Netlist
    verilog: str
    verification: VerificationReport

    @property
    def pareto_front(self) -> List[DesignPoint]:
        return self.sweep.front

    def simulation_model(self, spec: CommunicationSpec,
                         params: Optional[NocParameters] = None) -> SimulationModel:
        return generate_simulation_model(self.chosen, spec, params)


class NocDesignFlow:
    """The Fig. 6 pipeline, spec in, verified NoC instance out."""

    def __init__(
        self,
        spec: CommunicationSpec,
        floorplan: Optional[Floorplan] = None,
        tech_node: TechNode = TechNode.NM_65,
    ):
        self.spec = spec
        self.tech = TechnologyLibrary.for_node(tech_node)
        self.floorplan = floorplan
        self.explorer = DesignSpaceExplorer(spec, self.tech, floorplan)

    def run(
        self,
        switch_counts: Optional[Sequence[int]] = None,
        frequencies_hz: Sequence[float] = (400e6, 600e6, 800e6),
        flit_widths: Sequence[int] = (32,),
        params: Optional[NocParameters] = None,
        verify_cycles: int = 3000,
        choose: Optional[DesignPoint] = None,
    ) -> FlowResult:
        """Execute the full flow.

        ``choose`` overrides the automatic knee-point selection with a
        specific design point (the designer's pick from the front).
        """
        sweep = self.explorer.explore(
            switch_counts=switch_counts,
            frequencies_hz=frequencies_hz,
            flit_widths=flit_widths,
        )
        if choose is not None:
            chosen = choose
        else:
            if not sweep.front:
                raise RuntimeError(
                    "no feasible design point found; relax frequency or "
                    "bandwidth constraints"
                )
            chosen = knee_point(sweep.front)
        effective = params or NocParameters(flit_width=chosen.flit_width)
        netlist = generate_netlist(
            chosen.topology, chosen.routing_table, effective
        )
        verification = verify_design(
            chosen, self.spec, effective, sim_cycles=verify_cycles
        )
        return FlowResult(
            sweep=sweep,
            chosen=chosen,
            netlist=netlist,
            verilog=to_verilog(netlist),
            verification=verification,
        )
