"""Buffer sizing: the fourth design-automation issue of Section 2.

"Several research groups have focused on design automation for NoCs.
The issues include routing strategy development, topology synthesis,
QoS achievement, buffer sizing."

Input FIFOs must cover the flow-control round trip (or the link idles
between grants) plus a burstiness margin proportional to the
contention a port sees.  The sizer computes, per switch input port:

    depth = rtt_cycles + ceil(burst_margin * (sharers - 1))

where ``rtt_cycles`` is the credit/backpressure loop of the upstream
link (2 x link delay + pipeline overhead) and ``sharers`` counts the
flows crossing that port (each extra flow adds head-of-line exposure).
The result feeds :class:`repro.arch.parameters.NocParameters`
(per-design uniform depth = the worst port's need) or per-port reports
for custom RTL generation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.parameters import NocParameters
from repro.core.spec import CommunicationSpec
from repro.topology.graph import NodeKind, RoutingTable, Topology


@dataclass(frozen=True)
class PortBufferRequirement:
    """Sizing outcome for one switch input port."""

    switch: str
    upstream: str
    rtt_cycles: int
    flows_sharing: int
    recommended_depth: int


def size_buffers(
    topology: Topology,
    routing_table: RoutingTable,
    spec: Optional[CommunicationSpec] = None,
    switch_latency_cycles: int = 1,
    burst_margin: float = 0.5,
    min_depth: int = 2,
    max_depth: int = 16,
) -> List[PortBufferRequirement]:
    """Size every switch input port of a routed design.

    Without a ``spec``, every routed pair counts as one flow; with one,
    only the spec's flows contribute to the sharer counts.
    """
    if burst_margin < 0:
        raise ValueError("burst margin must be non-negative")
    if min_depth < 1 or max_depth < min_depth:
        raise ValueError("need 1 <= min_depth <= max_depth")

    # Flows crossing each directed link.
    flows_on_link: Dict[Tuple[str, str], int] = {}
    pairs = (
        [(f.source, f.destination) for f in spec.flows]
        if spec is not None
        else routing_table.pairs()
    )
    for pair in pairs:
        if not routing_table.has_route(*pair):
            raise ValueError(f"flow {pair} is not routed")
        for link in routing_table.route(*pair).links():
            flows_on_link[link] = flows_on_link.get(link, 0) + 1

    out: List[PortBufferRequirement] = []
    for switch in sorted(topology.switches):
        for upstream in sorted(topology.predecessors(switch)):
            link = (upstream, switch)
            delay = topology.link_attrs(*link).delay_cycles
            rtt = 2 * delay + switch_latency_cycles
            sharers = flows_on_link.get(link, 0)
            depth = rtt + math.ceil(burst_margin * max(0, sharers - 1))
            depth = max(min_depth, min(max_depth, depth))
            out.append(
                PortBufferRequirement(
                    switch=switch,
                    upstream=upstream,
                    rtt_cycles=rtt,
                    flows_sharing=sharers,
                    recommended_depth=depth,
                )
            )
    return out


def uniform_depth(requirements: List[PortBufferRequirement]) -> int:
    """The single depth covering every port (for uniform parametrization)."""
    if not requirements:
        raise ValueError("no ports to size")
    return max(r.recommended_depth for r in requirements)


def sized_parameters(
    base: NocParameters,
    requirements: List[PortBufferRequirement],
) -> NocParameters:
    """A parameter bundle with the sized uniform buffer depth."""
    depth = uniform_depth(requirements)
    threshold = min(base.onoff_threshold, depth)
    return base.with_(buffer_depth=depth, onoff_threshold=threshold)
