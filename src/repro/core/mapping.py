"""Core-to-switch mapping: min-cut style partitioning.

SunFloor's first phase assigns cores to switches so that heavily
communicating cores share a switch and inter-switch traffic (which costs
switch hops, wire power and link capacity) is minimized.  We use a
deterministic greedy agglomerative scheme: start with one cluster per
core, repeatedly merge the cluster pair with the highest inter-cluster
bandwidth, subject to a balance cap, until the target switch count is
reached — a standard lightweight stand-in for exact min-cut
partitioning with the same qualitative behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.spec import CommunicationSpec


@dataclass
class Mapping:
    """Assignment of cores to switch clusters."""

    clusters: List[List[str]]  # cluster index -> sorted core names

    def __post_init__(self) -> None:
        seen = set()
        for cluster in self.clusters:
            for core in cluster:
                if core in seen:
                    raise ValueError(f"core {core!r} mapped twice")
                seen.add(core)

    @property
    def num_switches(self) -> int:
        return len(self.clusters)

    def switch_of(self, core: str) -> int:
        for idx, cluster in enumerate(self.clusters):
            if core in cluster:
                return idx
        raise KeyError(f"core {core!r} not mapped")

    def intercluster_bandwidth(self, spec: CommunicationSpec) -> float:
        """Total MB/s crossing cluster boundaries — the min-cut objective."""
        total = 0.0
        assignment = {
            core: idx for idx, cluster in enumerate(self.clusters) for core in cluster
        }
        for flow in spec.flows:
            if assignment[flow.source] != assignment[flow.destination]:
                total += flow.bandwidth_mbps
        return total


def map_cores(
    spec: CommunicationSpec,
    num_switches: int,
    balance_slack: float = 1.5,
    positions: Dict[str, Tuple[float, float]] = None,
    distance_weight: float = 0.5,
) -> Mapping:
    """Partition the spec's cores into ``num_switches`` clusters.

    ``balance_slack`` caps cluster size at
    ``ceil(slack * n / num_switches)`` so one switch cannot swallow the
    whole design (its radix would kill frequency — Fig. 2).

    ``positions`` (core name -> floorplan center, mm) makes the mapping
    floorplan-aware, the key idea of [11]: merging physically distant
    cores is discounted because every flit between them pays wire power
    on the NI links, so clusters stay local and custom topologies keep
    their wire-length advantage.  ``distance_weight`` (per mm) controls
    the discount strength.
    """
    cores = spec.core_names
    n = len(cores)
    if num_switches < 1:
        raise ValueError("need at least one switch")
    if num_switches > n:
        raise ValueError(f"cannot use {num_switches} switches for {n} cores")
    if balance_slack < 1.0:
        raise ValueError("balance slack must be >= 1.0")
    max_size = max(1, math.ceil(balance_slack * n / num_switches))

    clusters: List[List[str]] = [[c] for c in cores]

    def discount(x: str, y: str) -> float:
        if positions is None or distance_weight <= 0:
            return 1.0
        (ax, ay), (bx, by) = positions[x], positions[y]
        return 1.0 / (1.0 + distance_weight * (abs(ax - bx) + abs(ay - by)))

    def weight(a: List[str], b: List[str]) -> float:
        return sum(
            spec.bandwidth_between(x, y) * discount(x, y) for x in a for y in b
        )

    while len(clusters) > num_switches:
        best: Tuple[float, int, int] = (-1.0, -1, -1)
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                if len(clusters[i]) + len(clusters[j]) > max_size:
                    continue
                w = weight(clusters[i], clusters[j])
                # Deterministic tie-break via indices (prefer earlier pairs).
                if w > best[0]:
                    best = (w, i, j)
        if best[1] < 0:
            # No merge respects the cap; relax it minimally to make progress.
            max_size += 1
            continue
        __, i, j = best
        clusters[i] = sorted(clusters[i] + clusters[j])
        del clusters[j]

    return Mapping(clusters=[sorted(c) for c in clusters])
