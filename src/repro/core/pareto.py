"""Pareto-front selection over design points.

"From the set of all Pareto optimal points, the designer can then
choose a NoC instance." (Section 6) — the tool's output is not one
design but the power/performance frontier.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.core.evaluate import DesignPoint

Objectives = Tuple[str, ...]
DEFAULT_OBJECTIVES: Objectives = ("power_mw", "avg_latency_ns")


def _values(point: DesignPoint, objectives: Objectives) -> Tuple[float, ...]:
    out = []
    for name in objectives:
        if not hasattr(point, name):
            raise AttributeError(f"design point has no objective {name!r}")
        out.append(float(getattr(point, name)))
    return tuple(out)


def dominates(a: DesignPoint, b: DesignPoint,
              objectives: Objectives = DEFAULT_OBJECTIVES) -> bool:
    """True if ``a`` is at least as good everywhere and better somewhere
    (all objectives minimized)."""
    va, vb = _values(a, objectives), _values(b, objectives)
    return all(x <= y for x, y in zip(va, vb)) and any(
        x < y for x, y in zip(va, vb)
    )


def pareto_front(
    points: Sequence[DesignPoint],
    objectives: Objectives = DEFAULT_OBJECTIVES,
    feasible_only: bool = True,
) -> List[DesignPoint]:
    """Non-dominated subset, sorted by the first objective.

    Infeasible points (capacity or timing violations) are excluded by
    default: the flow only offers the designer implementable instances.
    """
    candidates = [p for p in points if p.feasible] if feasible_only else list(points)
    front = [
        p
        for p in candidates
        if not any(dominates(q, p, objectives) for q in candidates if q is not p)
    ]
    front.sort(key=lambda p: _values(p, objectives))
    return front


def knee_point(front: Sequence[DesignPoint],
               objectives: Objectives = DEFAULT_OBJECTIVES) -> DesignPoint:
    """The balanced choice: minimal normalized distance to the utopia
    point (the coordinate-wise minimum of the front)."""
    if not front:
        raise ValueError("empty Pareto front")
    matrix = [_values(p, objectives) for p in front]
    lows = [min(col) for col in zip(*matrix)]
    highs = [max(col) for col in zip(*matrix)]

    def score(values):
        total = 0.0
        for v, lo, hi in zip(values, lows, highs):
            span = hi - lo
            total += ((v - lo) / span) ** 2 if span > 0 else 0.0
        return total

    best = min(range(len(front)), key=lambda i: (score(matrix[i]), i))
    return front[best]
