"""Design-point evaluation: power, area, frequency, latency.

Shared by the custom-topology synthesizer and the standard-topology
baselines so that every design point in the Fig. 6 flow's output is
scored by exactly the same technology-calibrated models:

* **area** — switch estimates from the radix-dependent physical model
  plus NI area;
* **max frequency** — the slowest switch in the design (Fig. 2: radix
  kills frequency), the quantity the flow "predicts accurately already
  during architectural design";
* **power** — leakage plus activity-proportional dynamic power, with
  wire power from floorplan distances;
* **average latency** — bandwidth-weighted zero-load packet latency in
  cycles (switch traversals + link traversals + serialization).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.spec import CommunicationSpec
from repro.physical.floorplan import Floorplan
from repro.physical.power import PowerModel
from repro.physical.switch_model import SwitchPhysicalModel
from repro.physical.technology import TechNode, TechnologyLibrary
from repro.physical.wire import WireModel, required_pipeline_stages
from repro.topology.graph import NodeKind, RoutingTable, Topology

# Nominal NI area (mm^2) per attached core at 65 nm, 32-bit; scales with
# technology cell area and flit width.
_NI_AREA_BASE_MM2 = 0.012


@dataclass
class DesignPoint:
    """One synthesized NoC configuration with its predicted metrics."""

    name: str
    num_switches: int
    flit_width: int
    frequency_hz: float
    max_frequency_hz: float
    power_mw: float
    area_mm2: float
    avg_latency_cycles: float
    avg_latency_ns: float
    max_link_load: float          # fraction of link capacity (worst link)
    feasible: bool
    topology: Topology
    routing_table: RoutingTable
    floorplan: Optional[Floorplan] = None
    notes: List[str] = field(default_factory=list)

    def __repr__(self) -> str:
        return (
            f"DesignPoint({self.name!r}, switches={self.num_switches}, "
            f"power={self.power_mw:.1f}mW, area={self.area_mm2:.2f}mm2, "
            f"latency={self.avg_latency_cycles:.1f}cy, "
            f"feasible={self.feasible})"
        )


class DesignEvaluator:
    """Scores a routed topology against a spec at an operating point."""

    def __init__(self, tech: TechnologyLibrary):
        self.tech = tech
        self.switch_model = SwitchPhysicalModel(tech)
        self.wire_model = WireModel(tech)
        self.power_model = PowerModel(tech)

    # ------------------------------------------------------------------
    def evaluate(
        self,
        name: str,
        spec: CommunicationSpec,
        topology: Topology,
        routing_table: RoutingTable,
        frequency_hz: float,
        flit_width: int,
        floorplan: Optional[Floorplan] = None,
        packet_size_flits: int = 4,
    ) -> DesignPoint:
        """Produce the full metric bundle for one design."""
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        notes: List[str] = []

        # -- per-link flow loads (bits/s) --------------------------------
        link_loads_bps: Dict[Tuple[str, str], float] = {}
        flow_rates = {}
        for flow in spec.flows:
            key = (flow.source, flow.destination)
            flow_rates[key] = flow_rates.get(key, 0.0) + flow.bandwidth_mbps * 8e6
        for key, bps in flow_rates.items():
            if not routing_table.has_route(*key):
                raise ValueError(f"flow {key} is not routed")
            for link in routing_table.route(*key).links():
                link_loads_bps[link] = link_loads_bps.get(link, 0.0) + bps

        capacity_bps = flit_width * frequency_hz
        max_load = max(
            (load / capacity_bps for load in link_loads_bps.values()), default=0.0
        )

        # -- switch characterization -------------------------------------
        area = 0.0
        power_components = []
        min_fmax = math.inf
        for sw in topology.switches:
            rin, rout = topology.radix(sw)
            est = self.switch_model.estimate(rin, rout, flit_width=flit_width)
            area += est.area_mm2
            min_fmax = min(min_fmax, est.max_frequency_hz)
            flits_per_s = sum(
                load / flit_width
                for (a, b), load in link_loads_bps.items()
                if a == sw
            )
            power_components.append(
                self.power_model.switch_power(sw, est, flits_per_s)
            )

        # -- NI area/power -------------------------------------------------
        ni_scale = (flit_width / 32.0) * (self.tech.cell_area_um2 / 1.3)
        for core in topology.cores:
            area += _NI_AREA_BASE_MM2 * ni_scale
            injected_bps = sum(
                bps for (s, __), bps in flow_rates.items() if s == core
            )
            ejected_bps = sum(
                bps for (__, d), bps in flow_rates.items() if d == core
            )
            power_components.append(
                self.power_model.ni_power(
                    core, flit_width, (injected_bps + ejected_bps) / flit_width
                )
            )

        # -- links: length from floorplan, pipelining for timing -----------
        for (src, dst), load in link_loads_bps.items():
            length = self._link_length(topology, floorplan, src, dst)
            power_components.append(
                self.power_model.link_power(
                    f"{src}->{dst}", length, flit_width, load / flit_width
                )
            )
        report = self.power_model.aggregate(power_components)

        # -- latency: bandwidth-weighted zero-load packet latency ----------
        total_bw = sum(flow_rates.values())
        weighted_cycles = 0.0
        flow_cycles: Dict[Tuple[str, str], float] = {}
        for key, bps in flow_rates.items():
            route = routing_table.route(*key)
            cycles = packet_size_flits  # serialization
            for src, dst in route.links():
                length = self._link_length(topology, floorplan, src, dst)
                stages = required_pipeline_stages(length, frequency_hz, self.tech)
                cycles += 1 + stages  # link traversal
            cycles += route.num_switches  # one cycle per switch
            flow_cycles[key] = cycles
            weighted_cycles += cycles * (bps / total_bw if total_bw else 0.0)
        latency_ns = weighted_cycles / frequency_hz * 1e9

        # -- per-flow latency constraints ("average latency constraints",
        # Section 6 tool-flow inputs) -------------------------------------
        latency_violations = []
        for flow in spec.flows:
            if flow.latency_constraint_ns is None:
                continue
            cycles = flow_cycles[(flow.source, flow.destination)]
            flow_ns = cycles / frequency_hz * 1e9
            if flow_ns > flow.latency_constraint_ns:
                latency_violations.append(
                    f"{flow.source}->{flow.destination}: {flow_ns:.1f} ns "
                    f"exceeds the {flow.latency_constraint_ns:.1f} ns bound"
                )

        feasible = (
            max_load <= 1.0
            and min_fmax >= frequency_hz
            and not latency_violations
        )
        if max_load > 1.0:
            notes.append(f"worst link at {max_load:.0%} of capacity")
        if min_fmax < frequency_hz:
            notes.append(
                f"slowest switch tops out at {min_fmax / 1e6:.0f} MHz "
                f"(requested {frequency_hz / 1e6:.0f} MHz)"
            )
        notes.extend(latency_violations)

        return DesignPoint(
            name=name,
            num_switches=len(topology.switches),
            flit_width=flit_width,
            frequency_hz=frequency_hz,
            max_frequency_hz=min_fmax if min_fmax != math.inf else frequency_hz,
            power_mw=report.total_mw,
            area_mm2=area,
            avg_latency_cycles=weighted_cycles,
            avg_latency_ns=latency_ns,
            max_link_load=max_load,
            feasible=feasible,
            topology=topology,
            routing_table=routing_table,
            floorplan=floorplan,
            notes=notes,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _link_length(
        topology: Topology, floorplan: Optional[Floorplan], src: str, dst: str
    ) -> float:
        attrs = topology.link_attrs(src, dst)
        if attrs.length_mm > 0:
            return attrs.length_mm
        if floorplan is not None and src in floorplan and dst in floorplan:
            return floorplan.distance_mm(src, dst)
        return 1.0  # nominal 1 mm when nothing better is known


def default_evaluator(node: TechNode = TechNode.NM_65) -> DesignEvaluator:
    return DesignEvaluator(TechnologyLibrary.for_node(node))
