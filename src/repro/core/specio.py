"""Spec serialization: the tool flow's file interface.

The commercial flows the paper describes consume designer-authored
input files ("the application architecture and application constraints
as inputs", Section 6).  This module round-trips
:class:`repro.core.spec.CommunicationSpec` through a plain JSON schema::

    {
      "name": "vopd",
      "cores": [
        {"name": "vld", "is_master": true, "is_slave": true,
         "protocol": "OCP", "width_mm": 1.0, "height_mm": 1.0},
        ...
      ],
      "flows": [
        {"source": "vld", "destination": "run_le_dec",
         "bandwidth_mbps": 70.0,
         "latency_constraint_ns": null, "is_hard_realtime": false},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.spec import CommunicationSpec, CoreSpec, FlowSpec


def spec_to_dict(spec: CommunicationSpec) -> dict:
    """Serialize a spec to plain data."""
    return {
        "name": spec.name,
        "cores": [
            {
                "name": core.name,
                "is_master": core.is_master,
                "is_slave": core.is_slave,
                "protocol": core.protocol,
                "width_mm": core.width_mm,
                "height_mm": core.height_mm,
            }
            for core in spec.cores.values()
        ],
        "flows": [
            {
                "source": flow.source,
                "destination": flow.destination,
                "bandwidth_mbps": flow.bandwidth_mbps,
                "latency_constraint_ns": flow.latency_constraint_ns,
                "is_hard_realtime": flow.is_hard_realtime,
            }
            for flow in spec.flows
        ],
    }


def spec_from_dict(data: dict) -> CommunicationSpec:
    """Deserialize; validation happens in the spec constructors."""
    try:
        cores = [
            CoreSpec(
                name=entry["name"],
                is_master=entry.get("is_master", True),
                is_slave=entry.get("is_slave", True),
                protocol=entry.get("protocol", "OCP"),
                width_mm=entry.get("width_mm", 1.0),
                height_mm=entry.get("height_mm", 1.0),
            )
            for entry in data["cores"]
        ]
        flows = [
            FlowSpec(
                source=entry["source"],
                destination=entry["destination"],
                bandwidth_mbps=entry["bandwidth_mbps"],
                latency_constraint_ns=entry.get("latency_constraint_ns"),
                is_hard_realtime=entry.get("is_hard_realtime", False),
            )
            for entry in data["flows"]
        ]
    except KeyError as exc:
        raise ValueError(f"spec file missing required field: {exc}") from None
    return CommunicationSpec(cores, flows, name=data.get("name", "soc"))


def save_spec(spec: CommunicationSpec, path: Union[str, Path]) -> None:
    """Write a spec as JSON."""
    Path(path).write_text(json.dumps(spec_to_dict(spec), indent=2) + "\n")


def load_spec(path: Union[str, Path]) -> CommunicationSpec:
    """Read a spec from JSON."""
    return spec_from_dict(json.loads(Path(path).read_text()))
