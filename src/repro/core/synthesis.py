"""Application-specific topology synthesis — the SunFloor engine [11].

Given a communication spec, a switch count and an operating point,
produce a *custom* topology: cores clustered onto switches (min-cut
mapping), inter-switch links opened only where traffic justifies them,
and every flow routed deadlock-free with wire power/delay taken from
the (incremental) floorplan — "this approach captures accurately wire
delays and power values of the NoC during topology synthesis".

Path allocation is the greedy power-aware scheme of the SunFloor family:

1. flows are allocated in decreasing bandwidth order;
2. each flow takes the min-marginal-power path over the complete switch
   graph (Dijkstra), where using an already-open link is cheap, opening
   a new one pays its leakage/area amortization, and exceeding link
   capacity is forbidden;
3. a channel-dependency graph is maintained incrementally; a path that
   would close a cycle is rejected and re-searched with the offending
   links penalized, falling back to the (provably acyclic) spanning-tree
   path through the mapping's cluster order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from repro.core.evaluate import DesignEvaluator, DesignPoint
from repro.core.mapping import Mapping, map_cores
from repro.core.spec import CommunicationSpec
from repro.physical.floorplan import Block, Floorplan, IncrementalFloorplanner
from repro.physical.technology import TechNode, TechnologyLibrary
from repro.physical.wire import required_pipeline_stages
from repro.topology.graph import Route, RoutingTable, Topology

# Amortized cost (dimensionless, in the Dijkstra metric) of opening a new
# inter-switch link: trades fewer links (power/area) against shorter paths.
_LINK_OPEN_COST = 1.0
# Weight of wire length in the path metric (per mm) relative to a hop.
_WIRE_COST_PER_MM = 0.35
# Retry budget for deadlock-driven re-search before the tree fallback.
_DEADLOCK_RETRIES = 4


def switch_name(index: int) -> str:
    return f"sw{index}"


@dataclass
class SynthesisResult:
    """A synthesized custom topology plus its evaluation."""

    design: DesignPoint
    mapping: Mapping
    opened_links: List[Tuple[int, int]]


class TopologySynthesizer:
    """The SunFloor-style synthesis engine over one spec."""

    def __init__(
        self,
        spec: CommunicationSpec,
        tech: TechnologyLibrary = None,
        floorplan: Optional[Floorplan] = None,
    ):
        self.spec = spec
        self.tech = tech or TechnologyLibrary.for_node(TechNode.NM_65)
        self.evaluator = DesignEvaluator(self.tech)
        self.input_floorplan = floorplan or self._default_floorplan()
        for core in spec.core_names:
            if core not in self.input_floorplan:
                raise ValueError(f"floorplan lacks a block for core {core!r}")

    def _default_floorplan(self) -> Floorplan:
        fp = Floorplan()
        names = self.spec.core_names
        cols = max(1, math.ceil(math.sqrt(len(names))))
        for i, name in enumerate(names):
            core = self.spec.cores[name]
            row, col = divmod(i, cols)
            fp.add(
                Block(
                    name,
                    core.width_mm,
                    core.height_mm,
                    x_mm=col * (core.width_mm + 0.2),
                    y_mm=row * (core.height_mm + 0.2),
                )
            )
        return fp

    # ------------------------------------------------------------------
    def synthesize(
        self,
        num_switches: int,
        frequency_hz: float = 800e6,
        flit_width: int = 32,
        packet_size_flits: int = 4,
    ) -> SynthesisResult:
        """Produce one design point at the given operating point."""
        core_positions = {
            name: self.input_floorplan.block(name).center
            for name in self.spec.core_names
        }
        mapping = map_cores(self.spec, num_switches, positions=core_positions)
        floorplan = self._place_switches(mapping)
        positions = {
            switch_name(i): floorplan.block(switch_name(i)).center
            for i in range(num_switches)
        }

        capacity_bps = flit_width * frequency_hz
        routes, opened = self._allocate_paths(
            mapping, positions, capacity_bps
        )

        topology = self._build_topology(
            mapping, opened, routes, floorplan, frequency_hz, flit_width
        )
        table = RoutingTable(topology)
        for (src, dst), switch_path in routes.items():
            table.set_route(Route(tuple([src, *switch_path, dst])))

        design = self.evaluator.evaluate(
            name=f"{self.spec.name}-custom-k{num_switches}",
            spec=self.spec,
            topology=topology,
            routing_table=table,
            frequency_hz=frequency_hz,
            flit_width=flit_width,
            floorplan=floorplan,
            packet_size_flits=packet_size_flits,
        )
        return SynthesisResult(design=design, mapping=mapping, opened_links=sorted(opened))

    # ------------------------------------------------------------------
    def _place_switches(self, mapping: Mapping) -> Floorplan:
        """Incremental floorplanning: insert switches near their cores."""
        planner = IncrementalFloorplanner(self.input_floorplan)
        for idx, cluster in enumerate(mapping.clusters):
            attached = []
            for core in cluster:
                weight = sum(
                    f.bandwidth_mbps
                    for f in self.spec.flows
                    if core in (f.source, f.destination)
                )
                attached.append((core, max(weight, 1.0)))
            planner.insert(switch_name(idx), 0.3, 0.3, attached)
        return planner.place()

    # ------------------------------------------------------------------
    def _allocate_paths(
        self,
        mapping: Mapping,
        positions: Dict[str, Tuple[float, float]],
        capacity_bps: float,
    ) -> Tuple[Dict[Tuple[str, str], List[str]], set]:
        """Power-aware, deadlock-free path allocation for every flow."""
        k = mapping.num_switches
        names = [switch_name(i) for i in range(k)]

        def dist(a: str, b: str) -> float:
            (ax, ay), (bx, by) = positions[a], positions[b]
            return abs(ax - bx) + abs(ay - by)

        opened: set = set()  # undirected (i, j) pairs, i < j
        link_load: Dict[Tuple[str, str], float] = {}  # directed, bits/s
        cdg = nx.DiGraph()  # nodes: directed (src node, dst node) links

        # Aggregate flows per core pair, largest first.
        pair_bw: Dict[Tuple[str, str], float] = {}
        for flow in self.spec.flows:
            key = (flow.source, flow.destination)
            pair_bw[key] = pair_bw.get(key, 0.0) + flow.bandwidth_mbps * 8e6
        order = sorted(pair_bw.items(), key=lambda kv: (-kv[1], kv[0]))

        routes: Dict[Tuple[str, str], List[str]] = {}

        def tree_path(a: int, b: int) -> List[str]:
            """Spanning-chain path sw_a .. sw_b over consecutive indices
            (the deterministic deadlock-free fallback: a chain is a tree,
            and index-monotone routes on a chain cannot close CDG cycles)."""
            step = 1 if b > a else -1
            return [switch_name(i) for i in range(a, b + step, step)]

        def full_links(src_core: str, path: List[str], dst_core: str):
            nodes = [src_core, *path, dst_core]
            return list(zip(nodes, nodes[1:]))

        def would_deadlock(links) -> bool:
            added_nodes = [l for l in links if l not in cdg]
            added_edges = [
                (a, b) for a, b in zip(links, links[1:])
                if not cdg.has_edge(a, b)
            ]
            cdg.add_edges_from(added_edges)
            for l in links:
                cdg.add_node(l)
            try:
                nx.find_cycle(cdg)
                cyclic = True
            except nx.NetworkXNoCycle:
                cyclic = False
            if cyclic:  # roll back
                cdg.remove_edges_from(added_edges)
                cdg.remove_nodes_from(
                    [n for n in added_nodes if cdg.degree(n) == 0]
                )
            return cyclic

        def commit(key: Tuple[str, str], path: List[str], bw: float) -> None:
            routes[key] = path
            for a, b in zip(path, path[1:]):
                i, j = int(a[2:]), int(b[2:])
                opened.add((min(i, j), max(i, j)))
                link_load[(a, b)] = link_load.get((a, b), 0.0) + bw

        for key, bw in order:
            src_sw = switch_name(mapping.switch_of(key[0]))
            dst_sw = switch_name(mapping.switch_of(key[1]))
            if src_sw == dst_sw:
                path = [src_sw]
                if not would_deadlock(full_links(key[0], path, key[1])):
                    commit(key, path, bw)
                    continue
                # Same-switch flows only add NI links; cycles impossible.
                commit(key, path, bw)
                continue

            penalties: Dict[Tuple[str, str], float] = {}
            path = None
            for attempt in range(_DEADLOCK_RETRIES + 1):
                candidate = self._dijkstra(
                    names, src_sw, dst_sw, dist, opened, link_load,
                    capacity_bps, bw, penalties,
                )
                if candidate is None:
                    break
                links = full_links(key[0], candidate, key[1])
                if not would_deadlock(links):
                    path = candidate
                    break
                for a, b in zip(candidate, candidate[1:]):
                    penalties[(a, b)] = penalties.get((a, b), 0.0) + 10.0
            if path is None:
                fallback = tree_path(int(src_sw[2:]), int(dst_sw[2:]))
                links = full_links(key[0], fallback, key[1])
                if would_deadlock(links):
                    raise RuntimeError(
                        f"cannot route flow {key} deadlock-free even on the "
                        "fallback tree; design is over-constrained"
                    )
                path = fallback
            commit(key, path, bw)

        # Any-to-any reachability: flows may leave switch clusters
        # unconnected, but a NoC must still physically reach every core
        # (test access, configuration, late traffic).  Chain disconnected
        # components along the index order — index-monotone chain links
        # keep the up*/down*-style acyclicity of the fallback tree.
        if k > 1:
            component = list(range(k))

            def find(i: int) -> int:
                while component[i] != i:
                    component[i] = component[component[i]]
                    i = component[i]
                return i

            for i, j in opened:
                component[find(i)] = find(j)
            for i in range(k - 1):
                if find(i) != find(i + 1):
                    opened.add((i, i + 1))
                    component[find(i)] = find(i + 1)

        return routes, opened

    def _dijkstra(
        self,
        names: Sequence[str],
        src: str,
        dst: str,
        dist,
        opened: set,
        link_load: Dict[Tuple[str, str], float],
        capacity_bps: float,
        bw: float,
        penalties: Dict[Tuple[str, str], float],
    ) -> Optional[List[str]]:
        """Min-marginal-cost path over the complete switch graph."""
        import heapq

        best: Dict[str, float] = {src: 0.0}
        parent: Dict[str, str] = {}
        heap = [(0.0, src)]
        visited = set()
        while heap:
            cost, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            if node == dst:
                path = [dst]
                while path[-1] != src:
                    path.append(parent[path[-1]])
                return list(reversed(path))
            for nxt in names:
                if nxt == node or nxt in visited:
                    continue
                load = link_load.get((node, nxt), 0.0)
                if load + bw > capacity_bps:
                    continue  # capacity exceeded: forbidden
                i, j = int(node[2:]), int(nxt[2:])
                edge_cost = 1.0 + _WIRE_COST_PER_MM * dist(node, nxt)
                if (min(i, j), max(i, j)) not in opened:
                    edge_cost += _LINK_OPEN_COST
                edge_cost += penalties.get((node, nxt), 0.0)
                total = cost + edge_cost
                if total < best.get(nxt, math.inf):
                    best[nxt] = total
                    parent[nxt] = node
                    heapq.heappush(heap, (total, nxt))
        return None

    # ------------------------------------------------------------------
    def _build_topology(
        self,
        mapping: Mapping,
        opened: set,
        routes: Dict[Tuple[str, str], List[str]],
        floorplan: Floorplan,
        frequency_hz: float,
        flit_width: int,
    ) -> Topology:
        topo = Topology(
            name=f"{self.spec.name}-custom-k{mapping.num_switches}",
            flit_width=flit_width,
        )
        for idx in range(mapping.num_switches):
            pos = floorplan.block(switch_name(idx)).center
            topo.add_switch(switch_name(idx), pos=pos)
        for idx, cluster in enumerate(mapping.clusters):
            for core in cluster:
                topo.add_core(core)
                length = floorplan.distance_mm(core, switch_name(idx))
                stages = required_pipeline_stages(length, frequency_hz, self.tech)
                topo.add_link(
                    core, switch_name(idx),
                    length_mm=length, pipeline_stages=stages,
                )
        for i, j in sorted(opened):
            a, b = switch_name(i), switch_name(j)
            length = floorplan.distance_mm(a, b)
            stages = required_pipeline_stages(length, frequency_hz, self.tech)
            topo.add_link(a, b, length_mm=length, pipeline_stages=stages)
        return topo
