"""Simulation-model generation.

"The tools also generate simulation models (high level as well as RTL)
with traffic generators that can be used to validate the run-time
behavior of the system." (Section 6)

Given a design point and its spec, build a ready-to-run
:class:`repro.sim.NocSimulator` plus the flow-graph traffic generator
that replays the spec's bandwidths at the design's operating point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.arch.packet import MessageClass
from repro.arch.parameters import NocParameters
from repro.core.evaluate import DesignPoint
from repro.core.spec import CommunicationSpec
from repro.sim.simulator import NocSimulator
from repro.sim.traffic import Flow, FlowGraphTraffic


@dataclass
class SimulationModel:
    """A built simulator plus its matching traffic generator."""

    simulator: NocSimulator
    traffic: FlowGraphTraffic
    design: DesignPoint

    def run(self, cycles: int, drain: bool = True):
        """Convenience: drive the traffic and return statistics."""
        return self.simulator.run(cycles, self.traffic, drain=drain)


def generate_simulation_model(
    design: DesignPoint,
    spec: CommunicationSpec,
    params: Optional[NocParameters] = None,
    packet_size_flits: int = 4,
    warmup_cycles: int = 0,
    load_scale: float = 1.0,
) -> SimulationModel:
    """Build the executable model of one design point.

    ``load_scale`` multiplies every flow's bandwidth — used by the
    verification step to probe headroom above the specified load.
    """
    if load_scale <= 0:
        raise ValueError("load scale must be positive")
    params = params or NocParameters(flit_width=design.flit_width)
    if params.flit_width != design.flit_width:
        raise ValueError(
            f"parameter flit width {params.flit_width} does not match the "
            f"design's {design.flit_width}"
        )
    simulator = NocSimulator(
        design.topology,
        design.routing_table,
        params,
        warmup_cycles=warmup_cycles,
    )
    flows = []
    for f in spec.flows:
        rate = f.flits_per_cycle(design.flit_width, design.frequency_hz)
        flows.append(
            Flow(
                f.source,
                f.destination,
                flits_per_cycle=min(1.0, rate * load_scale),
                packet_size_flits=packet_size_flits,
                message_class=MessageClass.BEST_EFFORT,
            )
        )
    return SimulationModel(
        simulator=simulator,
        traffic=FlowGraphTraffic(flows),
        design=design,
    )
