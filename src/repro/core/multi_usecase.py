"""Multi-use-case synthesis: one NoC, several applications.

The SoCs of the paper's introduction run many applications ("a mobile
phone SoC nowadays comprises several tens to hundreds of components"),
and the tool flow must support "varied application Quality-of-Service
constraints" (Section 1).  The SunFloor family's published extension
synthesizes a *single* topology that satisfies every use case (video
call, playback, browsing...) — each a communication spec over the same
cores — by constructing the worst-case envelope spec:

* per core pair, the envelope bandwidth is the **maximum** over use
  cases (use cases are mutually exclusive in time, so they do not add);
* per core pair, the envelope latency constraint is the **minimum**
  (tightest) over use cases.

The synthesized design is then re-verified against every individual
use case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.evaluate import DesignPoint
from repro.core.spec import CommunicationSpec, CoreSpec, FlowSpec
from repro.core.synthesis import SynthesisResult, TopologySynthesizer
from repro.core.verification import VerificationReport, verify_design
from repro.physical.floorplan import Floorplan
from repro.physical.technology import TechnologyLibrary


def envelope_spec(
    use_cases: Sequence[CommunicationSpec],
    name: str = "envelope",
) -> CommunicationSpec:
    """The worst-case merge of several use cases over the same cores."""
    if not use_cases:
        raise ValueError("need at least one use case")
    core_names = set(use_cases[0].core_names)
    for uc in use_cases[1:]:
        if set(uc.core_names) != core_names:
            raise ValueError(
                f"use case {uc.name!r} has a different core set; "
                "multi-use-case synthesis requires one platform"
            )
    # Core specs must agree (same physical cores); take the first.
    cores: List[CoreSpec] = list(use_cases[0].cores.values())

    bandwidth: Dict[Tuple[str, str], float] = {}
    latency: Dict[Tuple[str, str], Optional[float]] = {}
    realtime: Dict[Tuple[str, str], bool] = {}
    for uc in use_cases:
        per_pair: Dict[Tuple[str, str], float] = {}
        for flow in uc.flows:
            key = (flow.source, flow.destination)
            per_pair[key] = per_pair.get(key, 0.0) + flow.bandwidth_mbps
            if flow.latency_constraint_ns is not None:
                current = latency.get(key)
                latency[key] = (
                    flow.latency_constraint_ns
                    if current is None
                    else min(current, flow.latency_constraint_ns)
                )
            if flow.is_hard_realtime:
                realtime[key] = True
        for key, bw in per_pair.items():
            bandwidth[key] = max(bandwidth.get(key, 0.0), bw)

    flows = [
        FlowSpec(
            source=src,
            destination=dst,
            bandwidth_mbps=bw,
            latency_constraint_ns=latency.get((src, dst)),
            is_hard_realtime=realtime.get((src, dst), False),
        )
        for (src, dst), bw in sorted(bandwidth.items())
    ]
    return CommunicationSpec(cores, flows, name=name)


@dataclass
class MultiUseCaseResult:
    """The shared design plus its per-use-case verification."""

    design: DesignPoint
    envelope: CommunicationSpec
    synthesis: SynthesisResult
    verifications: Dict[str, VerificationReport]

    @property
    def all_use_cases_pass(self) -> bool:
        return all(report.passed for report in self.verifications.values())


def synthesize_multi_usecase(
    use_cases: Sequence[CommunicationSpec],
    num_switches: int,
    frequency_hz: float = 600e6,
    flit_width: int = 32,
    tech: Optional[TechnologyLibrary] = None,
    floorplan: Optional[Floorplan] = None,
    verify_cycles: int = 1500,
) -> MultiUseCaseResult:
    """Synthesize for the envelope, verify each use case on the result."""
    envelope = envelope_spec(use_cases)
    synthesizer = TopologySynthesizer(envelope, tech, floorplan)
    synthesis = synthesizer.synthesize(
        num_switches, frequency_hz=frequency_hz, flit_width=flit_width
    )
    design = synthesis.design

    verifications: Dict[str, VerificationReport] = {}
    for uc in use_cases:
        verifications[uc.name] = verify_design(
            design, uc, sim_cycles=verify_cycles
        )
    return MultiUseCaseResult(
        design=design,
        envelope=envelope,
        synthesis=synthesis,
        verifications=verifications,
    )
