"""Structural netlist generation — "the RTL of the topology is
automatically generated" (Section 6).

Produces a structural description of the synthesized NoC: one entry per
switch, NI and link with full parametrization, exportable as a Python
dict (for programmatic consumption) or as structural Verilog text (the
xpipesCompiler-style hardware-compiler output).  The Verilog is a
faithful *structural* rendering — module instances, parameter bindings,
port connections — standing in for the authors' synthesizable library.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.parameters import NocParameters
from repro.topology.graph import NodeKind, RoutingTable, Topology


@dataclass
class ComponentInstance:
    """One hardware instance in the netlist."""

    kind: str            # "switch" | "ni_initiator" | "ni_target" | "link"
    name: str
    parameters: Dict[str, object] = field(default_factory=dict)
    connections: Dict[str, str] = field(default_factory=dict)  # port -> net


@dataclass
class Netlist:
    """The structural design: instances plus the LUT contents."""

    name: str
    instances: List[ComponentInstance]
    luts: Dict[str, Dict[str, Tuple[str, ...]]]  # core -> dst -> route

    def instances_of(self, kind: str) -> List[ComponentInstance]:
        return [inst for inst in self.instances if inst.kind == kind]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "instances": [
                {
                    "kind": inst.kind,
                    "name": inst.name,
                    "parameters": dict(inst.parameters),
                    "connections": dict(inst.connections),
                }
                for inst in self.instances
            ],
            "luts": {
                core: {dst: list(route) for dst, route in table.items()}
                for core, table in self.luts.items()
            },
        }


def _net(src: str, dst: str) -> str:
    return f"net_{src}__{dst}"


def generate_netlist(
    topology: Topology,
    routing_table: RoutingTable,
    params: Optional[NocParameters] = None,
) -> Netlist:
    """Elaborate the topology into component instances."""
    params = params or NocParameters()
    instances: List[ComponentInstance] = []

    for sw in sorted(topology.switches):
        rin, rout = topology.radix(sw)
        connections = {}
        for i, pred in enumerate(sorted(topology.predecessors(sw))):
            connections[f"in[{i}]"] = _net(pred, sw)
        for i, succ in enumerate(sorted(topology.successors(sw))):
            connections[f"out[{i}]"] = _net(sw, succ)
        instances.append(
            ComponentInstance(
                kind="switch",
                name=sw,
                parameters={
                    "inputs": rin,
                    "outputs": rout,
                    "flit_width": params.flit_width,
                    "buffer_depth": params.buffer_depth,
                    "flow_control": params.flow_control.value,
                    "arbitration": params.arbitration.value,
                },
                connections=connections,
            )
        )

    for core in sorted(topology.cores):
        out_nets = {
            f"to_switch[{i}]": _net(core, sw)
            for i, sw in enumerate(sorted(topology.successors(core)))
        }
        in_nets = {
            f"from_switch[{i}]": _net(sw, core)
            for i, sw in enumerate(sorted(topology.predecessors(core)))
        }
        if out_nets:
            instances.append(
                ComponentInstance(
                    kind="ni_initiator",
                    name=f"{core}_ini",
                    parameters={
                        "flit_width": params.flit_width,
                        "header_bits": params.header_bits,
                        "protocol": "OCP2.0",
                    },
                    connections=out_nets,
                )
            )
        if in_nets:
            instances.append(
                ComponentInstance(
                    kind="ni_target",
                    name=f"{core}_tgt",
                    parameters={
                        "flit_width": params.flit_width,
                        "protocol": "OCP2.0",
                    },
                    connections=in_nets,
                )
            )

    for src, dst in sorted(topology.links):
        attrs = topology.link_attrs(src, dst)
        instances.append(
            ComponentInstance(
                kind="link",
                name=f"link_{src}__{dst}",
                parameters={
                    "width": topology.link_width(src, dst),
                    "pipeline_stages": attrs.pipeline_stages,
                    "length_mm": round(attrs.length_mm, 3),
                },
                connections={"src": _net(src, dst), "dst": _net(src, dst)},
            )
        )

    luts: Dict[str, Dict[str, Tuple[str, ...]]] = {}
    for route in routing_table:
        luts.setdefault(route.source, {})[route.destination] = route.path

    return Netlist(name=topology.name, instances=instances, luts=luts)


def validate_netlist(netlist: Netlist, topology: Topology) -> None:
    """Structural consistency checks; raises ValueError on violation.

    * one switch instance per topology switch, with matching radix;
    * every topology link has exactly one link instance;
    * every net connects a driver and a sink (appears in >= 2 instances,
      or belongs to a link instance that loops it through);
    * every LUT route starts at its owning core.
    """
    problems = []
    switches = {inst.name: inst for inst in netlist.instances_of("switch")}
    if set(switches) != set(topology.switches):
        problems.append(
            f"switch instances {sorted(switches)} do not match topology "
            f"switches {sorted(topology.switches)}"
        )
    else:
        for name, inst in switches.items():
            rin, rout = topology.radix(name)
            if inst.parameters.get("inputs") != rin or inst.parameters.get(
                "outputs"
            ) != rout:
                problems.append(f"switch {name!r} radix mismatch")

    link_instances = netlist.instances_of("link")
    if len(link_instances) != len(topology.links):
        problems.append(
            f"{len(link_instances)} link instances for "
            f"{len(topology.links)} topology links"
        )

    usage: Dict[str, int] = {}
    for inst in netlist.instances:
        seen_here = set(inst.connections.values())
        for net in seen_here:
            usage[net] = usage.get(net, 0) + 1
    dangling = [
        net for net, count in usage.items() if count < 2
    ]
    if dangling:
        problems.append(f"dangling nets: {sorted(dangling)[:4]}...")

    for core, table in netlist.luts.items():
        for dst, route in table.items():
            if route[0] != core:
                problems.append(
                    f"LUT of {core!r} holds a route starting at {route[0]!r}"
                )
    if problems:
        raise ValueError("; ".join(problems))


def to_verilog(netlist: Netlist) -> str:
    """Emit the netlist as structural Verilog text."""
    lines = [
        f"// Structural NoC netlist: {netlist.name}",
        "// Generated by repro.core.netlist (xpipesCompiler-style output)",
        f"module {_ident(netlist.name)} (input clk, input rst_n);",
        "",
    ]
    nets = set()
    for inst in netlist.instances:
        nets.update(inst.connections.values())
    for net in sorted(nets):
        lines.append(f"  wire [`FLIT_W-1:0] {_ident(net)};")
    lines.append("")
    module_of = {
        "switch": "xpipes_switch",
        "ni_initiator": "xpipes_ni_initiator",
        "ni_target": "xpipes_ni_target",
        "link": "xpipes_link",
    }
    for inst in netlist.instances:
        params = ", ".join(
            f".{key.upper()}({_verilog_value(value)})"
            for key, value in sorted(inst.parameters.items())
        )
        ports = ", ".join(
            f".{_ident(port)}({_ident(net)})"
            for port, net in sorted(inst.connections.items())
        )
        lines.append(
            f"  {module_of[inst.kind]} #({params}) {_ident(inst.name)} "
            f"(.clk(clk), .rst_n(rst_n){', ' + ports if ports else ''});"
        )
    lines.append("")
    lines.append("endmodule")
    return "\n".join(lines)


def _ident(text: str) -> str:
    out = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in text)
    return out if not out[0].isdigit() else f"_{out}"


def _verilog_value(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return str(value)
    return f'"{value}"'
