"""Standard-topology baselines: mesh and star references.

The synthesis literature the paper recounts (Section 2) differentiated
itself from "earlier approaches that were targeting only standard
topologies, such as meshes, as these do not map well to SoCs that are
usually heterogeneous in nature".  To reproduce that comparison the
flow also evaluates each spec mapped onto a mesh (with a
traffic-aware tile assignment) and onto a single-hub star, scored by
the same evaluator as the custom designs.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core.evaluate import DesignEvaluator, DesignPoint
from repro.core.spec import CommunicationSpec
from repro.physical.technology import TechNode, TechnologyLibrary
from repro.topology.graph import Route, RoutingTable, Topology
from repro.topology.mesh import mesh
from repro.topology.routing import xy_routing
from repro.topology.star import star


def spec_floorplan(spec: CommunicationSpec) -> "Floorplan":
    """The default core floorplan: same grid the synthesizer assumes.

    Keeping every candidate (custom, mesh, star...) on the same physical
    substrate makes the wire-length comparison honest.
    """
    from repro.physical.floorplan import Block, Floorplan

    fp = Floorplan()
    names = spec.core_names
    cols = max(1, math.ceil(math.sqrt(len(names))))
    for i, name in enumerate(names):
        core = spec.cores[name]
        row, col = divmod(i, cols)
        fp.add(
            Block(
                name,
                core.width_mm,
                core.height_mm,
                x_mm=col * (core.width_mm + 0.2),
                y_mm=row * (core.height_mm + 0.2),
            )
        )
    return fp


def _traffic_aware_tile_assignment(
    spec: CommunicationSpec, width: int, height: int
) -> Dict[str, Tuple[int, int]]:
    """Greedy placement: heavy communicators land on adjacent tiles.

    Cores are placed in decreasing total-traffic order; each core takes
    the free tile minimizing bandwidth-weighted Manhattan distance to
    its already-placed partners (deterministic tie-breaks).
    """
    tiles = [(x, y) for y in range(height) for x in range(width)]
    totals = {
        c: sum(
            f.bandwidth_mbps
            for f in spec.flows
            if c in (f.source, f.destination)
        )
        for c in spec.core_names
    }
    order = sorted(spec.core_names, key=lambda c: (-totals[c], c))
    placed: Dict[str, Tuple[int, int]] = {}
    free = list(tiles)
    center = (width // 2, height // 2)
    for core in order:
        best = None
        for tile in free:
            cost = 0.0
            for other, pos in placed.items():
                bw = spec.bandwidth_between(core, other)
                if bw > 0:
                    cost += bw * (abs(tile[0] - pos[0]) + abs(tile[1] - pos[1]))
            if not placed:  # first core: center-most tile
                cost = abs(tile[0] - center[0]) + abs(tile[1] - center[1])
            key = (cost, tile)
            if best is None or key < best[0]:
                best = (key, tile)
        placed[core] = best[1]
        free.remove(best[1])
    return placed


def mesh_baseline(
    spec: CommunicationSpec,
    evaluator: Optional[DesignEvaluator] = None,
    frequency_hz: float = 800e6,
    flit_width: int = 32,
    tile_pitch_mm: float = 1.5,
    packet_size_flits: int = 4,
) -> DesignPoint:
    """Map the spec onto the smallest mesh that fits, route XY, score."""
    evaluator = evaluator or DesignEvaluator(
        TechnologyLibrary.for_node(TechNode.NM_65)
    )
    n = len(spec.core_names)
    width = max(2, math.ceil(math.sqrt(n)))
    height = max(2, math.ceil(n / width))
    assignment = _traffic_aware_tile_assignment(spec, width, height)

    grid = mesh(width, height, flit_width=flit_width, tile_pitch_mm=tile_pitch_mm)
    # Rebuild with the spec's core names on the assigned tiles.
    topo = Topology(f"{spec.name}-mesh{width}x{height}", flit_width=flit_width)
    for sw in grid.switches:
        attrs = grid.node_attrs(sw)
        topo.add_switch(sw, x=attrs["x"], y=attrs["y"])
    for core, (x, y) in assignment.items():
        topo.add_core(core, x=x, y=y)
        topo.add_link(core, f"s_{x}_{y}", length_mm=tile_pitch_mm / 4)
    for src, dst in grid.links:
        if grid.kind(src).value == "switch" and grid.kind(dst).value == "switch":
            if not topo.has_link(src, dst):
                attrs = grid.link_attrs(src, dst)
                topo.add_link(src, dst, length_mm=attrs.length_mm)

    full_table = xy_routing(topo)
    table = RoutingTable(topo)
    for flow in spec.flows:
        if not table.has_route(flow.source, flow.destination):
            table.set_route(full_table.route(flow.source, flow.destination))

    return evaluator.evaluate(
        name=f"{spec.name}-mesh{width}x{height}",
        spec=spec,
        topology=topo,
        routing_table=table,
        frequency_hz=frequency_hz,
        flit_width=flit_width,
        packet_size_flits=packet_size_flits,
    )


def star_baseline(
    spec: CommunicationSpec,
    evaluator: Optional[DesignEvaluator] = None,
    frequency_hz: float = 800e6,
    flit_width: int = 32,
    packet_size_flits: int = 4,
) -> DesignPoint:
    """Single central crossbar: minimal hops, maximal radix.

    Spoke lengths come from the shared default floorplan (hub at the
    die centroid), so the crossbar pays its true global wiring.
    """
    evaluator = evaluator or DesignEvaluator(
        TechnologyLibrary.for_node(TechNode.NM_65)
    )
    fp = spec_floorplan(spec)
    x0, y0, x1, y1 = fp.bounding_box()
    hub = ((x0 + x1) / 2.0, (y0 + y1) / 2.0)
    topo = Topology(f"{spec.name}-star", flit_width=flit_width)
    topo.add_switch("hub")
    for core in spec.core_names:
        cx, cy = fp.block(core).center
        spoke = abs(cx - hub[0]) + abs(cy - hub[1])
        topo.add_core(core)
        topo.add_link(core, "hub", length_mm=max(0.3, spoke))
    table = RoutingTable(topo)
    for flow in spec.flows:
        if not table.has_route(flow.source, flow.destination):
            table.set_route(
                Route((flow.source, "hub", flow.destination))
            )
    return evaluator.evaluate(
        name=f"{spec.name}-star",
        spec=spec,
        topology=topo,
        routing_table=table,
        frequency_hz=frequency_hz,
        flit_width=flit_width,
        packet_size_flits=packet_size_flits,
    )
