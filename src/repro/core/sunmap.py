"""SUNMAP-style topology selection over standard networks [9].

"Initial works on topology design focused on mapping cores onto regular
topologies" (Section 2) — SUNMAP [9] automated "topology selection and
generation": map the application onto each standard topology family,
evaluate, and pick the best.  This module reproduces that earlier
generation of tools; the custom synthesis of
:mod:`repro.core.synthesis` is the successor that the paper's narrative
contrasts it with.

Supported families: 2D mesh, torus, star (single crossbar),
hierarchical star, and Spidergon.  Cores are placed traffic-aware on
the coordinate-bearing families (heavy communicators adjacent), flows
are routed with each family's deadlock-free scheme, and every candidate
is scored by the shared :class:`repro.core.evaluate.DesignEvaluator`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.baselines import mesh_baseline, star_baseline
from repro.core.evaluate import DesignEvaluator, DesignPoint
from repro.core.mapping import map_cores
from repro.core.spec import CommunicationSpec
from repro.physical.technology import TechNode, TechnologyLibrary
from repro.topology.graph import Route, RoutingTable, Topology
from repro.topology.ring import spidergon as spidergon_topology
from repro.topology.routing import (
    dateline_vc_assignment,
    shortest_path_routing,
    spidergon_routing,
    torus_xy_routing,
)
from repro.topology.mesh import torus as torus_topology

STANDARD_FAMILIES = ("mesh", "torus", "star", "hierarchical-star", "spidergon")


@dataclass
class SunmapResult:
    """All evaluated candidates plus the selection."""

    candidates: List[DesignPoint]
    best: DesignPoint
    objective: str


def _spidergon_candidate(
    spec: CommunicationSpec,
    evaluator: DesignEvaluator,
    frequency_hz: float,
    flit_width: int,
) -> Optional[DesignPoint]:
    n = len(spec.core_names)
    size = n if n % 2 == 0 else n + 1
    if size < 4:
        return None
    base = spidergon_topology(size, flit_width=flit_width)
    # Traffic-aware ring placement: order cores greedily so heavy pairs
    # sit on adjacent ring positions.
    order = _ring_order(spec)
    topo = Topology(f"{spec.name}-spidergon{size}", flit_width=flit_width)
    for sw in base.switches:
        topo.add_switch(sw, **{
            k: v for k, v in base.node_attrs(sw).items() if k != "kind"
        })
    for src, dst in base.links:
        if base.kind(src).value == "switch" and base.kind(dst).value == "switch":
            if not topo.has_link(src, dst):
                topo.add_link(
                    src, dst, length_mm=base.link_attrs(src, dst).length_mm,
                    bidirectional=False,
                )
    for idx, core in enumerate(order):
        topo.add_core(core, index=idx)
        topo.add_link(core, f"s_{idx}", length_mm=0.4)
    full = spidergon_routing(topo)
    table = RoutingTable(topo)
    for flow in spec.flows:
        if not table.has_route(flow.source, flow.destination):
            table.set_route(full.route(flow.source, flow.destination))
    return evaluator.evaluate(
        name=f"{spec.name}-spidergon{size}",
        spec=spec,
        topology=topo,
        routing_table=table,
        frequency_hz=frequency_hz,
        flit_width=flit_width,
    )


def _ring_order(spec: CommunicationSpec) -> List[str]:
    """Greedy chain: repeatedly append the core most connected to the
    current tail (a light-weight TSP heuristic for ring placement)."""
    remaining = list(spec.core_names)
    totals = {
        c: sum(
            f.bandwidth_mbps for f in spec.flows if c in (f.source, f.destination)
        )
        for c in remaining
    }
    current = max(remaining, key=lambda c: (totals[c], c))
    order = [current]
    remaining.remove(current)
    while remaining:
        nxt = max(
            remaining,
            key=lambda c: (spec.bandwidth_between(order[-1], c), -ord(c[0]), c),
        )
        order.append(nxt)
        remaining.remove(nxt)
    return order


def _torus_candidate(
    spec: CommunicationSpec,
    evaluator: DesignEvaluator,
    frequency_hz: float,
    flit_width: int,
) -> Optional[DesignPoint]:
    from repro.core.baselines import _traffic_aware_tile_assignment

    n = len(spec.core_names)
    width = max(3, math.ceil(math.sqrt(n)))
    height = max(3, math.ceil(n / width))
    base = torus_topology(width, height, flit_width=flit_width)
    assignment = _traffic_aware_tile_assignment(spec, width, height)
    topo = Topology(f"{spec.name}-torus{width}x{height}", flit_width=flit_width)
    for sw in base.switches:
        attrs = base.node_attrs(sw)
        topo.add_switch(sw, x=attrs["x"], y=attrs["y"])
    for src, dst in base.links:
        if base.kind(src).value == "switch" and base.kind(dst).value == "switch":
            if not topo.has_link(src, dst):
                topo.add_link(
                    src, dst, length_mm=base.link_attrs(src, dst).length_mm,
                    bidirectional=False,
                )
    for core, (x, y) in assignment.items():
        topo.add_core(core, x=x, y=y)
        topo.add_link(core, f"s_{x}_{y}", length_mm=0.4)
    full = torus_xy_routing(topo, width, height)
    table = RoutingTable(topo)
    for flow in spec.flows:
        if not table.has_route(flow.source, flow.destination):
            table.set_route(full.route(flow.source, flow.destination))
    point = evaluator.evaluate(
        name=f"{spec.name}-torus{width}x{height}",
        spec=spec,
        topology=topo,
        routing_table=table,
        frequency_hz=frequency_hz,
        flit_width=flit_width,
    )
    point.notes.append("requires 2 VCs (dateline) for deadlock freedom")
    return point


def _hierarchical_star_candidate(
    spec: CommunicationSpec,
    evaluator: DesignEvaluator,
    frequency_hz: float,
    flit_width: int,
) -> Optional[DesignPoint]:
    from repro.core.baselines import spec_floorplan

    n = len(spec.core_names)
    num_clusters = max(2, round(math.sqrt(n)))
    if num_clusters >= n:
        return None
    fp = spec_floorplan(spec)
    positions = {name: fp.block(name).center for name in spec.core_names}
    mapping = map_cores(spec, num_clusters, positions=positions)
    # Crossbars at cluster centroids, hub at the centroid of crossbars:
    # the same physical honesty the custom synthesizer pays.
    centroids = []
    for cluster in mapping.clusters:
        cx = sum(positions[c][0] for c in cluster) / len(cluster)
        cy = sum(positions[c][1] for c in cluster) / len(cluster)
        centroids.append((cx, cy))
    hub = (
        sum(c[0] for c in centroids) / len(centroids),
        sum(c[1] for c in centroids) / len(centroids),
    )
    topo = Topology(f"{spec.name}-hstar{num_clusters}", flit_width=flit_width)
    topo.add_switch("hub")
    for ci, cluster in enumerate(mapping.clusters):
        topo.add_switch(f"xbar_{ci}", cluster=ci)
        hub_len = abs(centroids[ci][0] - hub[0]) + abs(centroids[ci][1] - hub[1])
        topo.add_link(f"xbar_{ci}", "hub", length_mm=max(0.3, hub_len))
        for core in cluster:
            spoke = abs(positions[core][0] - centroids[ci][0]) + abs(
                positions[core][1] - centroids[ci][1]
            )
            topo.add_core(core, cluster=ci)
            topo.add_link(core, f"xbar_{ci}", length_mm=max(0.3, spoke))
    full = shortest_path_routing(topo)
    table = RoutingTable(topo)
    for flow in spec.flows:
        if not table.has_route(flow.source, flow.destination):
            table.set_route(full.route(flow.source, flow.destination))
    return evaluator.evaluate(
        name=f"{spec.name}-hstar{num_clusters}",
        spec=spec,
        topology=topo,
        routing_table=table,
        frequency_hz=frequency_hz,
        flit_width=flit_width,
    )


def select_topology(
    spec: CommunicationSpec,
    families: Sequence[str] = STANDARD_FAMILIES,
    objective: str = "power_mw",
    frequency_hz: float = 600e6,
    flit_width: int = 32,
    tech: Optional[TechnologyLibrary] = None,
    feasible_only: bool = True,
) -> SunmapResult:
    """Map the spec onto each family, evaluate, pick the best.

    ``objective`` is any numeric :class:`DesignPoint` attribute
    (``power_mw``, ``avg_latency_cycles``, ``area_mm2``...).
    """
    unknown = set(families) - set(STANDARD_FAMILIES)
    if unknown:
        raise ValueError(f"unknown families: {sorted(unknown)}")
    evaluator = DesignEvaluator(
        tech or TechnologyLibrary.for_node(TechNode.NM_65)
    )
    candidates: List[DesignPoint] = []
    for family in families:
        if family == "mesh":
            candidates.append(
                mesh_baseline(spec, evaluator, frequency_hz=frequency_hz,
                              flit_width=flit_width)
            )
        elif family == "star":
            candidates.append(
                star_baseline(spec, evaluator, frequency_hz=frequency_hz,
                              flit_width=flit_width)
            )
        elif family == "torus":
            point = _torus_candidate(spec, evaluator, frequency_hz, flit_width)
            if point is not None:
                candidates.append(point)
        elif family == "hierarchical-star":
            point = _hierarchical_star_candidate(
                spec, evaluator, frequency_hz, flit_width
            )
            if point is not None:
                candidates.append(point)
        elif family == "spidergon":
            point = _spidergon_candidate(
                spec, evaluator, frequency_hz, flit_width
            )
            if point is not None:
                candidates.append(point)
    if not candidates:
        raise RuntimeError("no candidate topology could be built")
    pool = [p for p in candidates if p.feasible] if feasible_only else candidates
    if not pool:
        raise RuntimeError(
            "no feasible standard topology at this operating point"
        )
    best = min(pool, key=lambda p: (getattr(p, objective), p.name))
    return SunmapResult(candidates=candidates, best=best, objective=objective)
