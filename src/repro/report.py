"""Text and CSV reporting of design artifacts.

The tool-flow outputs designers actually look at: a topology summary, a
Pareto/design-point table, a link-load report, and CSV export for
external plotting.  Everything is plain text — no plotting
dependencies — so reports drop into logs and papers alike.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.evaluate import DesignPoint
from repro.topology.graph import NodeKind, RoutingTable, Topology


def topology_summary(topology: Topology) -> str:
    """Human-readable structural overview of one topology."""
    lines = [f"Topology {topology.name!r}"]
    switches = topology.switches
    cores = topology.cores
    sw_links = sum(
        1
        for a, b in topology.links
        if topology.kind(a) is NodeKind.SWITCH
        and topology.kind(b) is NodeKind.SWITCH
    )
    lines.append(
        f"  {len(switches)} switches, {len(cores)} cores, "
        f"{sw_links} inter-switch links (unidirectional)"
    )
    radices = sorted(topology.radix(sw)[0] for sw in switches)
    if radices:
        lines.append(
            f"  radix min/median/max: {radices[0]}/"
            f"{radices[len(radices) // 2]}/{radices[-1]}"
        )
    lengths = [
        topology.link_attrs(a, b).length_mm
        for a, b in topology.links
        if topology.link_attrs(a, b).length_mm > 0
    ]
    if lengths:
        lines.append(
            f"  link lengths: {min(lengths):.2f}..{max(lengths):.2f} mm "
            f"(mean {sum(lengths) / len(lengths):.2f})"
        )
    per_switch: Dict[str, int] = {}
    for core in cores:
        for sw in topology.attached_switches(core):
            per_switch[sw] = per_switch.get(sw, 0) + 1
    if per_switch:
        lines.append(
            f"  cores per switch: up to {max(per_switch.values())}"
        )
    return "\n".join(lines)


_DESIGN_COLUMNS = (
    ("name", "{:<26}"),
    ("num_switches", "{:>3}"),
    ("power_mw", "{:>8.1f}"),
    ("avg_latency_cycles", "{:>7.1f}"),
    ("avg_latency_ns", "{:>8.1f}"),
    ("area_mm2", "{:>8.3f}"),
    ("max_link_load", "{:>6.2f}"),
    ("feasible", "{!s:>8}"),
)


def design_table(points: Sequence[DesignPoint], marker: Optional[DesignPoint] = None) -> str:
    """Fixed-width table of design points (the Pareto-front printout)."""
    if not points:
        return "(no design points)"
    header = (
        f"{'name':<26} {'k':>3} {'mW':>8} {'cycles':>7} {'ns':>8} "
        f"{'mm2':>8} {'load':>6} {'feasible':>8}"
    )
    lines = [header, "-" * len(header)]
    for point in points:
        cells = " ".join(
            fmt.format(getattr(point, attr)) for attr, fmt in _DESIGN_COLUMNS
        )
        if marker is not None and point is marker:
            cells += "   <-"
        lines.append(cells)
    return "\n".join(lines)


def design_points_csv(points: Sequence[DesignPoint]) -> str:
    """CSV export of design points for external plotting."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "name", "num_switches", "flit_width", "frequency_mhz",
            "max_frequency_mhz", "power_mw", "area_mm2",
            "avg_latency_cycles", "avg_latency_ns", "max_link_load",
            "feasible",
        ]
    )
    for p in points:
        writer.writerow(
            [
                p.name, p.num_switches, p.flit_width,
                round(p.frequency_hz / 1e6, 1),
                round(p.max_frequency_hz / 1e6, 1),
                round(p.power_mw, 3), round(p.area_mm2, 4),
                round(p.avg_latency_cycles, 2),
                round(p.avg_latency_ns, 2),
                round(p.max_link_load, 4), p.feasible,
            ]
        )
    return buffer.getvalue()


def link_load_report(
    topology: Topology,
    routing_table: RoutingTable,
    flow_rates: Optional[Dict[Tuple[str, str], float]] = None,
    top: int = 10,
) -> str:
    """The hottest links, as synthesis sees them."""
    loads = routing_table.link_loads(flow_rates)
    if not loads:
        return "(no routed traffic)"
    ranked = sorted(loads.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    width = max(len(f"{a}->{b}") for (a, b), __ in ranked)
    lines = [f"Top {len(ranked)} loaded links:"]
    for (a, b), load in ranked:
        lines.append(f"  {f'{a}->{b}':<{width}}  {load:,.1f}")
    return "\n".join(lines)


def mesh_heatmap(
    topology: Topology,
    link_values: Dict[Tuple[str, str], float],
    width: Optional[int] = None,
    height: Optional[int] = None,
) -> str:
    """ASCII heat map of a mesh's horizontal/vertical link loads.

    Each inter-switch link is drawn as a digit 0-9 (its value scaled to
    the maximum).  Both directions of a connection are summed.  Only
    meshes (switches with x/y attributes) are supported.
    """
    coords = {}
    for sw in topology.switches:
        attrs = topology.node_attrs(sw)
        if "x" not in attrs or "y" not in attrs:
            raise ValueError("heat map needs mesh coordinates on switches")
        coords[sw] = (attrs["x"], attrs["y"])
    if not coords:
        raise ValueError("topology has no switches")
    w = width or max(x for x, __ in coords.values()) + 1
    h = height or max(y for __, y in coords.values()) + 1
    by_coord = {pos: name for name, pos in coords.items()}

    def load(a: str, b: str) -> float:
        return link_values.get((a, b), 0.0) + link_values.get((b, a), 0.0)

    peak = max(
        (
            load(a, b)
            for a, b in link_values
            if a in coords and b in coords
        ),
        default=0.0,
    )

    def digit(value: float) -> str:
        if peak <= 0:
            return "."
        level = round(9 * value / peak)
        return str(level) if level > 0 else "."

    lines = []
    for y in range(h - 1, -1, -1):
        row = []
        for x in range(w):
            row.append("#")
            if x + 1 < w:
                a, b = by_coord.get((x, y)), by_coord.get((x + 1, y))
                row.append(digit(load(a, b)) * 3 if a and b else "   ")
        lines.append("".join(row))
        if y > 0:
            vert = []
            for x in range(w):
                a, b = by_coord.get((x, y)), by_coord.get((x, y - 1))
                vert.append(digit(load(a, b)) if a and b else " ")
                if x + 1 < w:
                    vert.append("   ")
            lines.append("".join(vert))
    return "\n".join(lines)


def latency_csv(records, bucket_cycles: int = 100) -> str:
    """CSV of latency vs injection time (saturation visualization)."""
    if bucket_cycles < 1:
        raise ValueError("bucket must be >= 1 cycle")
    buckets: Dict[int, List[int]] = {}
    for record in records:
        buckets.setdefault(
            record.injection_cycle // bucket_cycles, []
        ).append(record.latency)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["cycle_bucket_start", "packets", "mean_latency"])
    for bucket in sorted(buckets):
        samples = buckets[bucket]
        writer.writerow(
            [bucket * bucket_cycles, len(samples),
             round(sum(samples) / len(samples), 2)]
        )
    return buffer.getvalue()
