"""repro — a Networks-on-Chip design automation stack.

Reproduction of the system stack surveyed in G. De Micheli et al.,
"Networks on Chips: from Research to Products", DAC 2010:

* :mod:`repro.arch` — the xpipes-style parametrizable component library
  (network interfaces, switches, links, flow control, arbitration).
* :mod:`repro.sim` — a deterministic cycle-accurate flit-level simulator.
* :mod:`repro.topology` — topology generators and deadlock-free routing.
* :mod:`repro.physical` — technology-calibrated area / frequency / power /
  wiring models and an incremental floorplanner.
* :mod:`repro.qos` — Aethereal-style TDMA guaranteed-throughput services.
* :mod:`repro.core` — the SunFloor / iNoCs-style synthesis tool flow
  (Fig. 6 of the paper): spec in, Pareto set of floorplan-aware custom
  topologies out, with netlist and simulation-model generation.
* :mod:`repro.three_d` — 3D-IC extensions (TSVs, vertical-link
  serialization, 3D synthesis, built-in link test).
* :mod:`repro.gals` — GALS synchronization and voltage-frequency islands.
* :mod:`repro.chips` — case-study chip models (Intel Teraflops, Tilera
  TILE-Gx, FAUST, BONE, SPIN).
* :mod:`repro.apps` — application communication workloads (MPEG-4, VOPD,
  MWD, PIP, ...).
"""

__version__ = "1.0.0"
