"""repro.lab — parallel experiment orchestration with result caching.

The tool flow of the paper is a batch workload: "the topology synthesis
tool builds several topologies with different switch counts and
architectural parameters" (Section 6), and every evaluation figure is a
sweep.  This subsystem turns any such sweep into declarative, content-
addressed :class:`Job` specs executed by a multiprocessing pool, with:

* :mod:`repro.lab.cache` — an on-disk cache keyed by the content hash
  of (job kind, parameters, seed, runner version, library version), so
  re-running a sweep only computes new or changed points;
* :mod:`repro.lab.store` — a persistent JSONL result store with
  query/aggregation helpers (Pareto fronts, load curves, provenance);
* :mod:`repro.lab.executor` — serial and process-pool executors behind
  one :func:`run_jobs` engine with observable hit/compute accounting;
* :mod:`repro.lab.sweeps` — builders that express the existing sweeps
  (synthesis exploration, load curves, saturation searches) as jobs and
  reassemble the classic result objects afterwards.

Entry points elsewhere in the stack delegate here:
``DesignSpaceExplorer.explore(parallel=True)``,
``load_latency_curve(executor=...)`` and the ``repro batch`` CLI
subcommand.
"""

from repro.lab.cache import NullCache, ResultCache
from repro.lab.executor import (
    BatchResult,
    ProcessExecutor,
    SerialExecutor,
    make_executor,
    run_jobs,
)
from repro.lab.hashing import (
    CODE_SALT,
    canonical_json,
    derive_seed,
    stable_hash,
    to_jsonable,
)
from repro.lab.jobs import (
    Job,
    JobCancelled,
    JobObserver,
    current_observer,
    registered_kinds,
    run_job,
    runner,
    runner_version,
)
from repro.lab.records import (
    design_point_from_dict,
    design_point_to_dict,
    floorplan_from_dict,
    floorplan_to_dict,
    load_point_from_dict,
    load_point_to_dict,
    noc_parameters_from_dict,
    noc_parameters_to_dict,
)
from repro.lab.store import ResultStore
from repro.lab.sweeps import (
    default_switch_counts,
    fault_campaign_jobs,
    fault_summary_from_batch,
    load_curve_from_batch,
    load_curve_jobs,
    run_synthesis_sweep,
    saturation_job,
    sweep_result_from_batch,
    sweep_result_from_store,
    synthesis_sweep_jobs,
    utilization_curve_from_batch,
)

__all__ = [
    "BatchResult",
    "CODE_SALT",
    "Job",
    "JobCancelled",
    "JobObserver",
    "NullCache",
    "ProcessExecutor",
    "ResultCache",
    "ResultStore",
    "SerialExecutor",
    "canonical_json",
    "current_observer",
    "default_switch_counts",
    "derive_seed",
    "design_point_from_dict",
    "fault_campaign_jobs",
    "fault_summary_from_batch",
    "design_point_to_dict",
    "floorplan_from_dict",
    "floorplan_to_dict",
    "load_curve_from_batch",
    "load_curve_jobs",
    "load_point_from_dict",
    "load_point_to_dict",
    "make_executor",
    "noc_parameters_from_dict",
    "noc_parameters_to_dict",
    "registered_kinds",
    "run_job",
    "run_jobs",
    "run_synthesis_sweep",
    "runner",
    "runner_version",
    "saturation_job",
    "stable_hash",
    "sweep_result_from_batch",
    "sweep_result_from_store",
    "synthesis_sweep_jobs",
    "to_jsonable",
    "utilization_curve_from_batch",
]
