"""Round-trips between rich result objects and plain JSON records.

The cache and the :class:`~repro.lab.store.ResultStore` persist plain
data only, so every object that crosses the worker/disk boundary needs a
canonical dict form.  Topologies and routing tables reuse the existing
:mod:`repro.topology.serialize` schema; this module adds the remaining
pieces: :class:`~repro.core.evaluate.DesignPoint`,
:class:`~repro.sim.experiments.LoadPoint`,
:class:`~repro.arch.parameters.NocParameters` and
:class:`~repro.physical.floorplan.Floorplan`.

Design points deliberately drop their floorplan on serialization: the
floorplan is a synthesis intermediate, fully reconstructible from the
job spec, and keeping it out of the record makes the on-disk form the
canonical byte-identity of a design point (the property the
parallel-vs-serial acceptance test asserts).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.arch.parameters import ArbitrationKind, FlowControlKind, NocParameters
from repro.core.evaluate import DesignPoint
from repro.physical.floorplan import Block, Floorplan
from repro.sim.experiments import LoadPoint
from repro.topology.serialize import (
    routing_table_from_dict,
    routing_table_to_dict,
    topology_from_dict,
    topology_to_dict,
)


# ----------------------------------------------------------------------
# DesignPoint
# ----------------------------------------------------------------------
def design_point_to_dict(point: DesignPoint) -> dict:
    """Canonical record of one design point (floorplan omitted)."""
    return {
        "name": point.name,
        "num_switches": point.num_switches,
        "flit_width": point.flit_width,
        "frequency_hz": point.frequency_hz,
        "max_frequency_hz": point.max_frequency_hz,
        "power_mw": point.power_mw,
        "area_mm2": point.area_mm2,
        "avg_latency_cycles": point.avg_latency_cycles,
        "avg_latency_ns": point.avg_latency_ns,
        "max_link_load": point.max_link_load,
        "feasible": point.feasible,
        "notes": list(point.notes),
        "topology": topology_to_dict(point.topology),
        "routing": routing_table_to_dict(point.routing_table),
    }


def design_point_from_dict(data: dict) -> DesignPoint:
    try:
        topology = topology_from_dict(data["topology"])
        table = routing_table_from_dict(data["routing"], topology)
        return DesignPoint(
            name=data["name"],
            num_switches=data["num_switches"],
            flit_width=data["flit_width"],
            frequency_hz=data["frequency_hz"],
            max_frequency_hz=data["max_frequency_hz"],
            power_mw=data["power_mw"],
            area_mm2=data["area_mm2"],
            avg_latency_cycles=data["avg_latency_cycles"],
            avg_latency_ns=data["avg_latency_ns"],
            max_link_load=data["max_link_load"],
            feasible=data["feasible"],
            topology=topology,
            routing_table=table,
            floorplan=None,
            notes=list(data.get("notes", ())),
        )
    except KeyError as exc:
        raise ValueError(f"design point record missing field: {exc}") from None


# ----------------------------------------------------------------------
# LoadPoint
# ----------------------------------------------------------------------
def load_point_to_dict(point: LoadPoint) -> dict:
    return dataclasses.asdict(point)


def load_point_from_dict(data: dict) -> LoadPoint:
    try:
        return LoadPoint(
            offered_rate=data["offered_rate"],
            accepted_rate=data["accepted_rate"],
            mean_latency=data["mean_latency"],
            p95_latency=data["p95_latency"],
            packets=data["packets"],
        )
    except KeyError as exc:
        raise ValueError(f"load point record missing field: {exc}") from None


# ----------------------------------------------------------------------
# NocParameters
# ----------------------------------------------------------------------
def noc_parameters_to_dict(params: NocParameters) -> dict:
    data = dataclasses.asdict(params)
    data["flow_control"] = params.flow_control.value
    data["arbitration"] = params.arbitration.value
    return data


def noc_parameters_from_dict(data: dict) -> NocParameters:
    data = dict(data)
    if "flow_control" in data:
        data["flow_control"] = FlowControlKind(data["flow_control"])
    if "arbitration" in data:
        data["arbitration"] = ArbitrationKind(data["arbitration"])
    return NocParameters(**data)


# ----------------------------------------------------------------------
# Floorplan
# ----------------------------------------------------------------------
def floorplan_to_dict(floorplan: Floorplan) -> dict:
    return {
        "blocks": [
            {
                "name": b.name,
                "width_mm": b.width_mm,
                "height_mm": b.height_mm,
                "x_mm": b.x_mm,
                "y_mm": b.y_mm,
                "fixed": b.fixed,
            }
            for b in floorplan
        ],
    }


def floorplan_from_dict(data: dict) -> Floorplan:
    try:
        return Floorplan(
            Block(
                name=entry["name"],
                width_mm=entry["width_mm"],
                height_mm=entry["height_mm"],
                x_mm=entry.get("x_mm", 0.0),
                y_mm=entry.get("y_mm", 0.0),
                fixed=entry.get("fixed", False),
            )
            for entry in data["blocks"]
        )
    except KeyError as exc:
        raise ValueError(f"floorplan record missing field: {exc}") from None


def optional_floorplan_to_dict(floorplan: Optional[Floorplan]) -> Optional[dict]:
    return None if floorplan is None else floorplan_to_dict(floorplan)
