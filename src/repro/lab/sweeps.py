"""Declarative sweep builders: whole experiments as job lists.

These functions translate the sweeps the stack already performs —
the Fig. 6 synthesis design-space exploration, injection-rate load
curves, saturation searches — into lists of content-addressed
:class:`~repro.lab.jobs.Job` specs, plus the inverse: reassembling the
familiar result objects (:class:`~repro.core.sweep.SweepResult`, load
curves) from a completed batch or a replayed store.

The enumeration order of :func:`synthesis_sweep_jobs` mirrors
:meth:`repro.core.sweep.DesignSpaceExplorer.explore` exactly, so the
parallel cached path and the classic serial path produce identical
point lists — the property the acceptance tests pin down.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.pareto import DEFAULT_OBJECTIVES, Objectives, pareto_front
from repro.core.spec import CommunicationSpec
from repro.core.specio import spec_to_dict
from repro.core.sweep import SweepResult
from repro.lab.executor import BatchResult, run_jobs
from repro.lab.jobs import Job
from repro.lab.records import design_point_from_dict, optional_floorplan_to_dict
from repro.lab.store import ResultStore
from repro.physical.floorplan import Floorplan
from repro.physical.technology import TechNode
from repro.sim.experiments import LoadPoint
from repro.topology.presets import STANDARD_KINDS


def default_switch_counts(num_cores: int) -> Tuple[int, ...]:
    """The explorer's default sweep of switch counts for ``n`` cores."""
    n = num_cores
    return tuple(sorted({max(1, n // 4), max(2, n // 3), max(2, n // 2),
                         max(2, (2 * n) // 3), n}))


# ----------------------------------------------------------------------
# Synthesis (Fig. 6) sweeps
# ----------------------------------------------------------------------
def synthesis_sweep_jobs(
    spec: CommunicationSpec,
    switch_counts: Optional[Sequence[int]] = None,
    frequencies_hz: Sequence[float] = (400e6, 600e6, 800e6),
    flit_widths: Sequence[int] = (32,),
    include_baselines: bool = True,
    tech_node: TechNode = TechNode.NM_65,
    floorplan: Optional[Floorplan] = None,
    tags: Sequence[str] = (),
) -> List[Job]:
    """The full Fig. 6 design-space sweep as independent jobs.

    Point jobs come first (width-major, then frequency, then switch
    count), then the mesh/star baselines — the exact order
    ``DesignSpaceExplorer.explore`` evaluates serially.
    """
    n = len(spec.core_names)
    if switch_counts is None:
        switch_counts = default_switch_counts(n)
    spec_data = spec_to_dict(spec)
    floorplan_data = optional_floorplan_to_dict(floorplan)
    base_tags = tuple(tags) + (f"sweep:{spec.name}",)

    jobs: List[Job] = []
    for width in flit_widths:
        for freq in frequencies_hz:
            for k in switch_counts:
                if k < 1 or k > n:
                    continue
                jobs.append(Job(
                    kind="synthesis",
                    params={
                        "spec": spec_data,
                        "num_switches": k,
                        "frequency_hz": freq,
                        "flit_width": width,
                        "tech_node": tech_node.value,
                        "floorplan": floorplan_data,
                    },
                    tags=base_tags,
                ))
    if include_baselines:
        for width in flit_widths:
            for freq in frequencies_hz:
                for baseline in ("mesh", "star"):
                    jobs.append(Job(
                        kind="baseline",
                        params={
                            "spec": spec_data,
                            "baseline": baseline,
                            "frequency_hz": freq,
                            "flit_width": width,
                            "tech_node": tech_node.value,
                        },
                        tags=base_tags,
                    ))
    return jobs


def sweep_result_from_batch(
    batch: BatchResult,
    objectives: Objectives = DEFAULT_OBJECTIVES,
) -> SweepResult:
    """Reassemble a classic :class:`SweepResult` from a finished batch."""
    points = []
    baselines = []
    for job, result in zip(batch.jobs, batch.results):
        if job.kind == "synthesis":
            points.append(design_point_from_dict(result["design"]))
        elif job.kind == "baseline":
            baselines.append(design_point_from_dict(result["design"]))
    return SweepResult(
        points=points,
        front=pareto_front(points, objectives),
        baselines=baselines,
    )


def sweep_result_from_store(
    store: ResultStore,
    tags: Sequence[str] = (),
    objectives: Objectives = DEFAULT_OBJECTIVES,
) -> SweepResult:
    """Replay a stored sweep without recomputing anything.

    This is the figure-script path: run ``repro batch`` once, then
    rebuild the Pareto front from the JSONL store forever after.
    """
    points = store.design_points(tags=tags)
    return SweepResult(
        points=points,
        front=pareto_front(points, objectives),
        baselines=store.baseline_points(tags=tags),
    )


def run_synthesis_sweep(
    spec: CommunicationSpec,
    switch_counts: Optional[Sequence[int]] = None,
    frequencies_hz: Sequence[float] = (400e6, 600e6, 800e6),
    flit_widths: Sequence[int] = (32,),
    include_baselines: bool = True,
    tech_node: TechNode = TechNode.NM_65,
    floorplan: Optional[Floorplan] = None,
    objectives: Objectives = DEFAULT_OBJECTIVES,
    workers: Optional[int] = None,
    executor=None,
    cache=None,
    store: Optional[ResultStore] = None,
    tags: Sequence[str] = (),
) -> Tuple[SweepResult, BatchResult]:
    """One-call parallel cached exploration; (sweep, batch accounting)."""
    jobs = synthesis_sweep_jobs(
        spec,
        switch_counts=switch_counts,
        frequencies_hz=frequencies_hz,
        flit_widths=flit_widths,
        include_baselines=include_baselines,
        tech_node=tech_node,
        floorplan=floorplan,
        tags=tags,
    )
    batch = run_jobs(
        jobs, executor=executor, workers=workers, cache=cache, store=store
    )
    return sweep_result_from_batch(batch, objectives), batch


# ----------------------------------------------------------------------
# Simulation sweeps
# ----------------------------------------------------------------------
def load_curve_jobs(
    topology: str,
    size: int,
    rates: Sequence[float],
    pattern: str = "uniform",
    cycles: int = 1500,
    warmup: int = 250,
    packet_size: int = 4,
    seed: int = 1,
    noc_params: Optional[dict] = None,
    metrics_interval: Optional[int] = None,
    kernel: Optional[str] = None,
    tags: Sequence[str] = (),
) -> List[Job]:
    """One job per injection rate of a load-latency curve.

    ``metrics_interval`` additionally samples each point's simulation
    with a :class:`repro.obs.MetricsProbe` at that cycle interval,
    storing a compact utilization summary in every result — the
    utilization-vs-load view :meth:`ResultStore.utilization_curve`
    replays.  ``None`` (the default) leaves the params — and therefore
    every cache key — exactly as before.  The same absent-by-default
    convention applies to ``kernel`` (``"fast"`` / ``"reference"``);
    both kernels produce byte-identical results, so cached points stay
    valid either way.
    """
    if topology not in STANDARD_KINDS:
        raise ValueError(
            f"unknown topology {topology!r}; choose from {STANDARD_KINDS}"
        )
    base_tags = tuple(tags) + (f"curve:{topology}{size}:{pattern}",)
    jobs = []
    for rate in rates:
        params = {
            "topology": topology,
            "size": size,
            "rate": rate,
            "pattern": pattern,
            "cycles": cycles,
            "warmup": warmup,
            "packet_size": packet_size,
            "noc_params": noc_params,
        }
        if metrics_interval is not None:
            params["metrics_interval"] = metrics_interval
        if kernel is not None:
            params["kernel"] = kernel
        jobs.append(
            Job(kind="load_point", params=params, seed=seed, tags=base_tags)
        )
    return jobs


def load_curve_from_batch(batch: BatchResult) -> List[LoadPoint]:
    """LoadPoints from a finished curve batch, in offered-rate order."""
    from repro.lab.records import load_point_from_dict

    points = [
        load_point_from_dict(result["point"])
        for job, result in zip(batch.jobs, batch.results)
        if job.kind == "load_point" and result.get("point") is not None
    ]
    points.sort(key=lambda p: p.offered_rate)
    return points


def utilization_curve_from_batch(batch: BatchResult) -> List[dict]:
    """Offered rate vs. measured utilization from an instrumented batch.

    Companion to :func:`load_curve_from_batch` for curves built with a
    ``metrics_interval``; jobs without metrics are skipped.  Same row
    shape as :meth:`ResultStore.utilization_curve`.
    """
    rows = []
    for job, result in zip(batch.jobs, batch.results):
        if job.kind != "load_point":
            continue
        metrics = result.get("metrics")
        if metrics is None:
            continue
        rows.append(
            {
                "offered_rate": job.params["rate"],
                "mean_link_utilization": metrics["mean_link_utilization"],
                "peak_link_utilization": metrics["peak_link_utilization"],
                "total_stall_cycles": metrics["total_stall_cycles"],
                "total_contention_cycles": metrics["total_contention_cycles"],
                "top_links": metrics["top_links"],
            }
        )
    rows.sort(key=lambda r: r["offered_rate"])
    return rows


def fault_campaign_jobs(
    topology: str,
    size: int,
    runs: int = 4,
    pattern: str = "uniform",
    rate: float = 0.1,
    cycles: int = 4000,
    packet_size: int = 4,
    link_faults: int = 0,
    switch_faults: int = 1,
    transient_bursts: int = 0,
    repair_after: Optional[int] = None,
    seed: int = 1,
    noc_params: Optional[dict] = None,
    kernel: Optional[str] = None,
    tags: Sequence[str] = (),
) -> List[Job]:
    """A robustness campaign: ``runs`` seeded live-fault simulations.

    Run *i* uses seed ``seed + i`` for both its traffic and (via
    :func:`~repro.lab.hashing.derive_seed`) its fault schedule, so every
    run explores a different fault placement yet the whole campaign
    replays byte-identically from the same base seed.
    """
    if topology not in STANDARD_KINDS:
        raise ValueError(
            f"unknown topology {topology!r}; choose from {STANDARD_KINDS}"
        )
    if runs < 1:
        raise ValueError("a campaign needs at least one run")
    base_tags = tuple(tags) + (f"faults:{topology}{size}:{pattern}",)
    params = {
        "topology": topology,
        "size": size,
        "pattern": pattern,
        "rate": rate,
        "cycles": cycles,
        "packet_size": packet_size,
        "link_faults": link_faults,
        "switch_faults": switch_faults,
        "transient_bursts": transient_bursts,
        "repair_after": repair_after,
        "noc_params": noc_params,
    }
    if kernel is not None:  # absent by default: cache keys unchanged
        params["kernel"] = kernel
    return [
        Job(
            kind="fault_campaign",
            params=dict(params),
            seed=seed + i,
            tags=base_tags,
        )
        for i in range(runs)
    ]


def fault_summary_from_batch(batch: BatchResult) -> dict:
    """Aggregate survival statistics over a finished fault campaign."""
    results = [
        r for j, r in zip(batch.jobs, batch.results)
        if j.kind == "fault_campaign"
    ]
    if not results:
        raise ValueError("batch contains no fault_campaign jobs")
    survived = sum(1 for r in results if r["survived"])
    rates = [r["survival_rate"] for r in results if r["survival_rate"] is not None]
    detections = [
        rec["detection_latency"]
        for r in results
        for rec in r["recoveries"]
        if rec["detection_latency"] is not None
    ]
    inflations = [
        r["latency_inflation"]
        for r in results
        if r["latency_inflation"] is not None
    ]
    return {
        "runs": len(results),
        "survived": survived,
        "faults_injected": sum(len(r["faults"]) for r in results),
        "recoveries": sum(len(r["recoveries"]) for r in results),
        "gave_up": sum(1 for r in results if r["gave_up"]),
        "mean_survival_rate": sum(rates) / len(rates) if rates else None,
        "min_survival_rate": min(rates) if rates else None,
        "packets_delivered": sum(r["delivered"] for r in results),
        "packets_lost": sum(r["lost"] for r in results),
        "packets_abandoned_unreachable": sum(
            r["abandoned_unreachable"] for r in results
        ),
        "packets_retransmitted": sum(r["retransmitted"] for r in results),
        "mean_detection_latency": (
            sum(detections) / len(detections) if detections else None
        ),
        "mean_latency_inflation": (
            sum(inflations) / len(inflations) if inflations else None
        ),
    }


def saturation_job(
    topology: str,
    size: int,
    pattern: str = "uniform",
    latency_factor: float = 3.0,
    cycles: int = 1500,
    warmup: int = 250,
    packet_size: int = 4,
    seed: int = 1,
    tolerance: float = 0.02,
    noc_params: Optional[dict] = None,
    kernel: Optional[str] = None,
    tags: Sequence[str] = (),
) -> Job:
    """A single saturation bisection as a cacheable job."""
    if topology not in STANDARD_KINDS:
        raise ValueError(
            f"unknown topology {topology!r}; choose from {STANDARD_KINDS}"
        )
    params = {
        "topology": topology,
        "size": size,
        "pattern": pattern,
        "latency_factor": latency_factor,
        "cycles": cycles,
        "warmup": warmup,
        "packet_size": packet_size,
        "tolerance": tolerance,
        "noc_params": noc_params,
    }
    if kernel is not None:  # absent by default: cache keys unchanged
        params["kernel"] = kernel
    return Job(
        kind="saturation",
        params=params,
        seed=seed,
        tags=tuple(tags) + (f"saturation:{topology}{size}:{pattern}",),
    )
