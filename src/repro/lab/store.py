"""Persistent JSONL result store with query and aggregation helpers.

The cache (:mod:`repro.lab.cache`) answers "have I computed this exact
job?"; the store answers the designer's questions afterwards: *what is
the Pareto front over everything I ran? what does the load curve look
like? which runs produced this design?*  One JSONL line per completed
job keeps the format appendable from concurrent batch invocations,
greppable, and replayable — the figure scripts can rebuild a
:class:`~repro.core.sweep.SweepResult` from the store instead of
recomputing the sweep.

Each record carries the full job spec next to its result, so a store
file is self-describing provenance: the experiment that produced every
number can be re-derived (and re-verified against its content key)
without the original driver script.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.core.evaluate import DesignPoint
from repro.core.pareto import DEFAULT_OBJECTIVES, Objectives, pareto_front
from repro.lab.jobs import Job
from repro.lab.records import design_point_from_dict, load_point_from_dict
from repro.sim.experiments import LoadPoint

RECORD_SCHEMA = 1


class ResultStore:
    """Append-only JSONL store of (job spec, result) records."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        #: ``(lineno, reason)`` of every corrupt line skipped by the
        #: most recent full iteration — see :meth:`recovery_summary`.
        self.corrupt_lines: List[tuple] = []

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, job: Job, result: dict, cached: bool = False) -> dict:
        """Persist one completed job; returns the written record.

        The full line (record + newline) is built first and handed to
        the kernel as a single ``write`` on an append-mode handle, then
        flushed — concurrent writers (batch workers, serve sessions)
        interleave whole records rather than fragments.
        """
        record = {
            "schema": RECORD_SCHEMA,
            "key": job.key,
            "kind": job.kind,
            "seed": job.seed,
            "tags": list(job.tags),
            "params": job.params,
            "cached": bool(cached),
            "result": result,
        }
        line = json.dumps(record, separators=(",", ":")) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", buffering=len(line) + 1) as fh:
            fh.write(line)
            fh.flush()
        return record

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[dict]:
        self.corrupt_lines = []
        if not self.path.exists():
            return
        with self.path.open() as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError as exc:
                    # A crashed writer can leave a truncated trailing
                    # line (or a torn record from a pre-hardening
                    # writer).  The rest of the store is still good —
                    # record it, warn, and keep reading rather than
                    # losing it all.
                    self.corrupt_lines.append((lineno, str(exc)))
                    warnings.warn(
                        f"{self.path}:{lineno}: skipping corrupt record",
                        RuntimeWarning,
                        stacklevel=2,
                    )

    def recovery_summary(self) -> dict:
        """What a full read of the store skipped, per file.

        Re-reads the store and reports the corrupt lines (a crashed
        writer's torn trailing record, disk bit-rot) alongside the good
        record count, so batch tooling can *print* the damage instead
        of burying it in a ``RuntimeWarning``::

            {"path": ..., "records": n, "skipped": n,
             "corrupt_lines": [{"line": lineno, "reason": ...}, ...]}
        """
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            records = sum(1 for _ in self)
        return {
            "path": str(self.path),
            "records": records,
            "skipped": len(self.corrupt_lines),
            "corrupt_lines": [
                {"line": lineno, "reason": reason}
                for lineno, reason in self.corrupt_lines
            ],
        }

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def records(
        self,
        kind: Optional[str] = None,
        tags: Sequence[str] = (),
        latest_only: bool = True,
    ) -> List[dict]:
        """Filtered records; with ``latest_only`` one (the newest) per key."""
        out: List[dict] = []
        for record in self:
            if kind is not None and record["kind"] != kind:
                continue
            if any(tag not in record["tags"] for tag in tags):
                continue
            out.append(record)
        if latest_only:
            by_key: Dict[str, dict] = {}
            for record in out:
                by_key[record["key"]] = record
            out = list(by_key.values())
        return out

    def result_for(self, key: str) -> Optional[dict]:
        """The newest result recorded under a content key, if any."""
        found = None
        for record in self:
            if record["key"] == key:
                found = record["result"]
        return found

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def design_points(self, tags: Sequence[str] = ()) -> List[DesignPoint]:
        """Every synthesized design point (custom topologies only)."""
        return [
            design_point_from_dict(r["result"]["design"])
            for r in self.records(kind="synthesis", tags=tags)
        ]

    def baseline_points(self, tags: Sequence[str] = ()) -> List[DesignPoint]:
        """Every standard-topology reference point."""
        return [
            design_point_from_dict(r["result"]["design"])
            for r in self.records(kind="baseline", tags=tags)
        ]

    def pareto(
        self,
        objectives: Objectives = DEFAULT_OBJECTIVES,
        tags: Sequence[str] = (),
    ) -> List[DesignPoint]:
        """Pareto front over every stored synthesis point."""
        return pareto_front(self.design_points(tags=tags), objectives)

    def load_curve(self, tags: Sequence[str] = ()) -> List[LoadPoint]:
        """The stored load-latency curve, sorted by offered rate."""
        points = [
            load_point_from_dict(r["result"]["point"])
            for r in self.records(kind="load_point", tags=tags)
            if r["result"].get("point") is not None
        ]
        points.sort(key=lambda p: p.offered_rate)
        return points

    def utilization_curve(self, tags: Sequence[str] = ()) -> List[dict]:
        """Offered rate vs. measured link utilization, from stored metrics.

        Uses load_point records that carry a metrics summary (produced
        by :func:`~repro.lab.sweeps.load_curve_jobs` with a
        ``metrics_interval``); records without metrics are skipped.
        Sorted by offered rate.
        """
        rows = []
        for record in self.records(kind="load_point", tags=tags):
            metrics = record["result"].get("metrics")
            if metrics is None:
                continue
            rows.append(
                {
                    "offered_rate": record["params"]["rate"],
                    "mean_link_utilization": metrics["mean_link_utilization"],
                    "peak_link_utilization": metrics["peak_link_utilization"],
                    "total_stall_cycles": metrics["total_stall_cycles"],
                    "total_contention_cycles": (
                        metrics["total_contention_cycles"]
                    ),
                    "top_links": metrics["top_links"],
                }
            )
        rows.sort(key=lambda r: r["offered_rate"])
        return rows

    def run_metadata(self) -> Dict[str, Any]:
        """Store-level summary: counts per kind, cache reuse, seeds."""
        kinds: Dict[str, int] = {}
        seeds = set()
        cached = 0
        total = 0
        for record in self:
            total += 1
            kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
            seeds.add(record["seed"])
            cached += 1 if record["cached"] else 0
        return {
            "records": total,
            "by_kind": dict(sorted(kinds.items())),
            "cached": cached,
            "computed": total - cached,
            "seeds": sorted(seeds),
        }
