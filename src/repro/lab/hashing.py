"""Stable content hashing for experiment specs.

Content-addressed caching only works if "the same experiment" always
hashes to the same key — across processes, interpreter restarts and
machines.  Python's builtin ``hash`` is salted per process, dataclass
``repr`` is not canonical, and pickle is version-dependent, so the lab
defines its own canonical form: every spec object is reduced to plain
JSON data (:func:`to_jsonable`), serialized with sorted keys and fixed
separators (:func:`canonical_json`), and digested with SHA-256
(:func:`stable_hash`).

A code-version salt (:data:`CODE_SALT`) is folded into every job key so
that upgrading the library invalidates stale cache entries wholesale;
individual job runners additionally carry their own version number for
finer-grained invalidation (see :mod:`repro.lab.jobs`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum
from typing import Any

import repro

# Schema version of the lab's own serialized formats. Bump when the
# canonical form of job params or cached payloads changes shape.
LAB_SCHEMA_VERSION = 1

#: Folded into every cache key: a new library release (or lab schema
#: rev) makes every previously cached result a miss.
CODE_SALT = f"repro-{repro.__version__}/lab-{LAB_SCHEMA_VERSION}"


def to_jsonable(obj: Any) -> Any:
    """Reduce ``obj`` to plain JSON data, deterministically.

    Handles the spec objects that appear in job parameters — dataclasses
    (``NocParameters``, ``CoreSpec``...), enums, tuples, sets (sorted) —
    plus anything exposing a ``to_jsonable()`` hook.  Rejects types with
    no canonical form (functions, arbitrary objects) rather than hashing
    their repr, which would silently break key stability.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, Enum):
        return to_jsonable(obj.value)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"non-string dict key {key!r} has no canonical JSON form"
                )
            out[key] = to_jsonable(value)
        return out
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(to_jsonable(v) for v in obj)
    hook = getattr(obj, "to_jsonable", None)
    if callable(hook):
        return to_jsonable(hook())
    raise TypeError(f"cannot canonicalize {type(obj).__name__!r} for hashing")


def canonical_json(obj: Any) -> str:
    """The canonical serialized form: sorted keys, fixed separators."""
    return json.dumps(
        to_jsonable(obj), sort_keys=True, separators=(",", ":"),
        ensure_ascii=True, allow_nan=False,
    )


def stable_hash(obj: Any, salt: str = "") -> str:
    """SHA-256 hex digest of the canonical form of ``obj``."""
    digest = hashlib.sha256()
    if salt:
        digest.update(salt.encode("utf-8"))
        digest.update(b"\x00")
    digest.update(canonical_json(obj).encode("utf-8"))
    return digest.hexdigest()


def derive_seed(base_seed: int, *components: Any) -> int:
    """A stream-independent child seed from a base seed and labels.

    Monte-Carlo sweeps need one independent RNG stream per job while
    staying reproducible from a single user-facing seed; deriving the
    child seed from a hash (instead of ``base_seed + i``) keeps streams
    uncorrelated and insensitive to job reordering.
    """
    key = stable_hash([base_seed, list(components)])
    return int(key[:16], 16)
