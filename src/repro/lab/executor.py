"""Job execution: serial or multiprocessing pool, cache-aware.

:func:`run_jobs` is the lab's engine: it partitions a job list into
cache hits and work, fans the work out over a worker pool, persists the
fresh results, and hands back a :class:`BatchResult` whose ``results``
align 1:1 with the input jobs.  The split is observable — ``computed``
and ``cached`` counts let callers (and the acceptance tests) assert
"the second run recomputed nothing".

Workers receive pickled :class:`~repro.lab.jobs.Job` specs (plain data)
and resolve the runner by kind inside their own process, so nothing
unpicklable ever crosses the process boundary.  Results come back in
submission order regardless of completion order — parallel output is
byte-identical to serial output.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence

from repro.lab.cache import NullCache
from repro.lab.jobs import Job, run_job
from repro.lab.store import ResultStore


class Executor(Protocol):
    """Anything that can map the job runner over a batch."""

    def map(self, fn, items: Sequence) -> List: ...


class SerialExecutor:
    """In-process execution — the reference semantics."""

    def map(self, fn, items: Sequence) -> List:
        return [fn(item) for item in items]


class ProcessExecutor:
    """A ``multiprocessing.Pool`` with ``jobs`` workers.

    ``chunksize=1`` keeps long jobs (synthesis points vary wildly in
    cost) load-balanced across workers instead of pre-sharded.
    """

    def __init__(self, jobs: int):
        if jobs < 1:
            raise ValueError("need at least one worker")
        self.jobs = jobs

    def map(self, fn, items: Sequence) -> List:
        items = list(items)
        if not items:
            return []
        # A pool of one process is pure overhead; match serial exactly.
        if self.jobs == 1 or len(items) == 1:
            return [fn(item) for item in items]
        with multiprocessing.Pool(processes=min(self.jobs, len(items))) as pool:
            return pool.map(fn, items, chunksize=1)


def make_executor(jobs: Optional[int]) -> Executor:
    """``--jobs N`` to executor: N>1 forks a pool, else serial."""
    if jobs is not None and jobs > 1:
        return ProcessExecutor(jobs)
    return SerialExecutor()


@dataclass
class BatchResult:
    """The outcome of one batch: per-job results plus reuse accounting."""

    jobs: List[Job]
    results: List[dict]
    computed: int
    cached: int

    @property
    def hit_rate(self) -> float:
        total = self.computed + self.cached
        return self.cached / total if total else 0.0

    @property
    def quarantined(self) -> List[dict]:
        """Structured failure records standing in for results.

        Non-empty only under a :class:`repro.resilience.SupervisedExecutor`
        whose retry budget ran out on some jobs; each record carries the
        job description and the full attempt history (see
        :func:`repro.resilience.quarantine_payload`).
        """
        from repro.resilience.supervise import is_quarantined

        return [r for r in self.results if is_quarantined(r)]

    def result_for(self, job: Job) -> dict:
        return self.results[self.jobs.index(job)]


def run_jobs(
    jobs: Sequence[Job],
    executor: Optional[Executor] = None,
    workers: Optional[int] = None,
    cache=None,
    store: Optional[ResultStore] = None,
) -> BatchResult:
    """Execute a batch with cache reuse; results align with ``jobs``.

    Parameters
    ----------
    executor:
        Explicit executor; overrides ``workers``.
    workers:
        Pool size (``--jobs N``); ``None``/1 runs serially.
    cache:
        A :class:`~repro.lab.cache.ResultCache` (or ``None`` /
        :class:`~repro.lab.cache.NullCache` to always compute).
    store:
        Optional :class:`~repro.lab.store.ResultStore`; every job —
        hit or computed — is appended with its provenance.
    """
    jobs = list(jobs)
    cache = cache if cache is not None else NullCache()
    results: List[Optional[dict]] = [None] * len(jobs)

    pending: List[int] = []
    for i, job in enumerate(jobs):
        hit = cache.get(job.key)
        if hit is not None:
            results[i] = hit
        else:
            pending.append(i)

    if pending:
        from repro.resilience.supervise import is_quarantined

        ex = executor if executor is not None else make_executor(workers)
        fresh = ex.map(run_job, [jobs[i] for i in pending])
        for i, payload in zip(pending, fresh):
            # A quarantine record is a failure report, not a result:
            # it must never be cached (a later run should retry) nor
            # mistaken for provenance in the store.
            if not is_quarantined(payload):
                cache.put(jobs[i].key, payload)
            results[i] = payload

    if store is not None:
        from repro.resilience.supervise import is_quarantined

        pending_set = set(pending)
        for i, job in enumerate(jobs):
            if is_quarantined(results[i]):
                continue
            store.append(job, results[i], cached=i not in pending_set)

    return BatchResult(
        jobs=jobs,
        results=results,  # type: ignore[arg-type]  (all filled above)
        computed=len(pending),
        cached=len(jobs) - len(pending),
    )
