"""Declarative experiment jobs and their runners.

A :class:`Job` is a self-contained, JSON-serializable description of one
unit of work — "synthesize VOPD with 3 switches at 500 MHz", "simulate a
4x4 mesh at 0.2 flits/cycle/core with seed 7".  Because the spec is
plain data it can be pickled to a worker process, hashed into a
content-addressed cache key (:attr:`Job.key`), and persisted next to its
result for provenance.

Runners are registered by kind with a version number; the version is
folded into the cache key so changing a runner's algorithm invalidates
exactly that kind's cached results (the global :data:`~repro.lab.hashing.CODE_SALT`
handles library-wide invalidation).

Built-in runners cover the sweeps the tool flow actually performs:

==================  ======================================================
``synthesis``       one SunFloor design point (Fig. 6 flow)
``baseline``        one standard-topology reference (mesh or star)
``load_point``      one injection-rate point of a load-latency curve
``saturation``      a full bisection saturation search
``fault_campaign``  one seeded live-fault run with online recovery
==================  ======================================================
"""

from __future__ import annotations

from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.lab.hashing import CODE_SALT, stable_hash, to_jsonable

JobRunner = Callable[["Job"], dict]

_RUNNERS: Dict[str, Tuple[JobRunner, int]] = {}


class JobCancelled(Exception):
    """Raised inside a runner when its observer requests cancellation.

    Cooperative: the check happens on observation boundaries (metric
    windows, trace events), so a run without observation hooks finishes
    normally and the host discards the result instead.
    """


@dataclass
class JobObserver:
    """Observation-only hooks a host threads into a running job.

    :mod:`repro.serve` uses this to watch live simulations: a metrics
    probe streaming windows into ``metrics_sink`` and (optionally) flit
    tracing into ``trace_sink``.  An observer is *never* part of the job
    spec — it does not enter the cache key, and attaching one must not
    change any result payload (the probe and recorder only read; the
    ``metrics`` result key still appears only when the job's own
    ``metrics_interval`` parameter asks for it).
    """

    metrics_sink: Any = None
    trace_sink: Any = None
    metrics_interval: Optional[int] = None

    def attach(self, sim) -> None:
        """Instrument a simulator per this observer's configuration."""
        if self.metrics_interval:
            sim.enable_metrics(
                interval=self.metrics_interval, sink=self.metrics_sink
            )
        if self.trace_sink is not None:
            sim.enable_tracing(self.trace_sink)


#: The observer of the job currently executing in this thread/context.
_OBSERVER: ContextVar[Optional[JobObserver]] = ContextVar(
    "repro_lab_job_observer", default=None
)


def current_observer() -> Optional[JobObserver]:
    """The active :class:`JobObserver`, if :func:`run_job` installed one."""
    return _OBSERVER.get()


def runner(kind: str, version: int = 1) -> Callable[[JobRunner], JobRunner]:
    """Register a job runner for ``kind``.

    Bump ``version`` whenever the runner's output for identical
    parameters changes — it is part of every cache key of that kind.
    """

    def decorate(fn: JobRunner) -> JobRunner:
        if kind in _RUNNERS:
            raise ValueError(f"job kind {kind!r} already registered")
        _RUNNERS[kind] = (fn, version)
        return fn

    return decorate


def runner_version(kind: str) -> int:
    try:
        return _RUNNERS[kind][1]
    except KeyError:
        raise ValueError(f"unknown job kind {kind!r}") from None


def registered_kinds() -> Tuple[str, ...]:
    return tuple(sorted(_RUNNERS))


@dataclass(frozen=True)
class Job:
    """One unit of batch work, identified by content.

    ``params`` must be plain JSON data (the sweep builders in
    :mod:`repro.lab.sweeps` guarantee this); ``seed`` is the explicit RNG
    seed of any stochastic part; ``tags`` are free-form labels for store
    queries and do *not* enter the cache key (they describe why the job
    ran, not what it computes).
    """

    kind: str
    params: Mapping[str, Any]
    seed: int = 0
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", to_jsonable(dict(self.params)))
        object.__setattr__(self, "tags", tuple(self.tags))

    @property
    def key(self) -> str:
        """Content-addressed identity: spec + seed + code version."""
        return stable_hash(
            {
                "kind": self.kind,
                "params": self.params,
                "seed": self.seed,
                "runner_version": runner_version(self.kind),
            },
            salt=CODE_SALT,
        )

    def describe(self) -> str:
        return f"{self.kind}[{self.key[:12]}]"


def run_job(job: Job, observer: Optional[JobObserver] = None) -> dict:
    """Execute one job in the current process; returns a plain dict.

    The payload is normalized to plain JSON data (tuples to lists, enums
    to values) so a freshly computed result is indistinguishable from
    the same result read back from the cache or the store.

    ``observer`` installs observation-only streaming hooks for the
    duration of the call (see :class:`JobObserver`); runners that build
    simulators pick it up via :func:`current_observer`.  The result is
    identical with or without one.
    """
    from repro.obs.telemetry import span

    try:
        fn, _ = _RUNNERS[job.kind]
    except KeyError:
        raise ValueError(f"unknown job kind {job.kind!r}") from None
    # Telemetry only: with no tracer on the context (the default) this
    # span is a free no-op and nothing about the run changes.
    with span("run_job", kind=job.kind, key=job.key[:16]):
        if observer is None:
            return to_jsonable(fn(job))
        token = _OBSERVER.set(observer)
        try:
            return to_jsonable(fn(job))
        finally:
            _OBSERVER.reset(token)


# ----------------------------------------------------------------------
# Built-in runners.  Imports happen inside the functions: workers only
# pay for the layers the job actually touches, and the registry can be
# imported without dragging in the whole stack.
# ----------------------------------------------------------------------
@runner("synthesis", version=1)
def _run_synthesis(job: Job) -> dict:
    """One custom design point of the Fig. 6 synthesis sweep."""
    from repro.core.specio import spec_from_dict
    from repro.core.synthesis import TopologySynthesizer
    from repro.lab.records import design_point_to_dict, floorplan_from_dict
    from repro.physical.technology import TechNode, TechnologyLibrary

    p = job.params
    spec = spec_from_dict(p["spec"])
    tech = TechnologyLibrary.for_node(TechNode(p.get("tech_node", 65)))
    floorplan = (
        floorplan_from_dict(p["floorplan"]) if p.get("floorplan") else None
    )
    synthesizer = TopologySynthesizer(spec, tech, floorplan)
    result = synthesizer.synthesize(
        p["num_switches"],
        frequency_hz=p["frequency_hz"],
        flit_width=p.get("flit_width", 32),
        packet_size_flits=p.get("packet_size_flits", 4),
    )
    return {"design": design_point_to_dict(result.design)}


@runner("baseline", version=1)
def _run_baseline(job: Job) -> dict:
    """One standard-topology reference point (mesh or star)."""
    from repro.core.baselines import mesh_baseline, star_baseline
    from repro.core.evaluate import DesignEvaluator
    from repro.core.specio import spec_from_dict
    from repro.lab.records import design_point_to_dict
    from repro.physical.technology import TechNode, TechnologyLibrary

    p = job.params
    spec = spec_from_dict(p["spec"])
    tech = TechnologyLibrary.for_node(TechNode(p.get("tech_node", 65)))
    evaluator = DesignEvaluator(tech)
    builders = {"mesh": mesh_baseline, "star": star_baseline}
    try:
        build = builders[p["baseline"]]
    except KeyError:
        raise ValueError(
            f"unknown baseline {p.get('baseline')!r}; "
            f"choose from {sorted(builders)}"
        ) from None
    design = build(
        spec,
        evaluator,
        frequency_hz=p["frequency_hz"],
        flit_width=p.get("flit_width", 32),
    )
    return {"design": design_point_to_dict(design)}


@runner("load_point", version=1)
def _run_load_point(job: Job) -> dict:
    """One injection-rate point of a load-latency curve.

    With ``metrics_interval`` in the params, a read-only
    :class:`repro.obs.MetricsProbe` rides along and its compact summary
    (per-link utilization, hot links, stall/contention totals) lands in
    the result next to the point.  The probe never changes simulation
    outcomes, and the key is absent by default, so pre-existing cache
    keys and results are untouched.
    """
    from repro.lab.records import load_point_to_dict
    from repro.sim.experiments import _run_point
    from repro.topology.presets import standard_instance

    p = job.params
    inst = standard_instance(p["topology"], p["size"])
    params = _effective_sim_parameters(p, inst.min_vcs)
    obs = current_observer()
    # The job's own interval (which puts "metrics" in the result) wins;
    # an observer can still watch a job that never asked for metrics.
    interval = p.get("metrics_interval") or (
        obs.metrics_interval if obs is not None else None
    )
    probes = []
    on_sim = None
    if interval or (obs is not None and obs.trace_sink is not None):
        def on_sim(sim):
            if interval:
                probes.append(
                    sim.enable_metrics(
                        interval=interval,
                        sink=obs.metrics_sink if obs is not None else None,
                    )
                )
            if obs is not None and obs.trace_sink is not None:
                sim.enable_tracing(obs.trace_sink)
    point = _run_point(
        inst.topology,
        inst.table,
        params,
        inst.vc_assignment,
        p.get("pattern", "uniform"),
        p["rate"],
        p.get("cycles", 1500),
        p.get("warmup", 250),
        p.get("packet_size", 4),
        job.seed,
        # Both kernels are byte-identical, so the key may stay absent
        # (preserving every pre-existing cache key) and cached results
        # remain valid whichever kernel computed them.
        kernel=p.get("kernel", "fast"),
        on_sim=on_sim,
    )
    result = {"point": None if point is None else load_point_to_dict(point)}
    if probes:
        probes[0].finalize()
        if p.get("metrics_interval"):
            result["metrics"] = probes[0].compact_summary()
    return result


@runner("saturation", version=1)
def _run_saturation(job: Job) -> dict:
    """A complete bisection saturation search on a standard topology."""
    from repro.sim.experiments import saturation_throughput
    from repro.topology.presets import standard_instance

    p = job.params
    inst = standard_instance(p["topology"], p["size"])
    params = _effective_sim_parameters(p, inst.min_vcs)
    rate = saturation_throughput(
        inst.topology,
        inst.table,
        params,
        vc_assignment=inst.vc_assignment,
        pattern=p.get("pattern", "uniform"),
        latency_factor=p.get("latency_factor", 3.0),
        cycles=p.get("cycles", 1500),
        warmup=p.get("warmup", 250),
        packet_size=p.get("packet_size", 4),
        seed=job.seed,
        tolerance=p.get("tolerance", 0.02),
        kernel=p.get("kernel", "fast"),
    )
    return {"saturation_rate": rate}


@runner("fault_campaign", version=1)
def _run_fault_campaign(job: Job) -> dict:
    """One seeded fault-injection run with live recovery (robustness).

    Traffic draws from ``job.seed``; the fault schedule from
    ``derive_seed(job.seed, "faults")`` — two campaigns with the same
    seed are byte-identical, while traffic and faults stay decoupled.

    Checkpoint-aware: when the host installed a
    :class:`repro.resilience.CheckpointPlan` (a ContextVar side channel,
    like :class:`JobObserver` — never part of the cache key), the run
    persists a state capsule every ``plan.interval`` cycles and, on
    retry after a crash, resumes from the last capsule instead of cycle
    zero.  Results are byte-identical with checkpointing on, off, or
    resumed mid-run (``tests/resilience/`` enforces all three).
    """
    from repro.arch.packet import reset_packet_ids
    from repro.lab.hashing import derive_seed
    from repro.resilience.checkpoint import (
        current_checkpoint_plan,
        run_with_checkpoints,
    )
    from repro.sim import (
        DrainTimeoutError,
        FaultSchedule,
        NocSimulator,
        RecoveryController,
        RetransmissionPolicy,
        SyntheticTraffic,
    )
    from repro.topology.presets import standard_instance

    p = job.params
    cycles = p.get("cycles", 4000)
    plan = current_checkpoint_plan()
    ckpt_store = plan.store() if plan is not None else None
    resumed = (
        ckpt_store.try_restore(job.key) if ckpt_store is not None else None
    )
    if resumed is not None:
        sim, traffic = resumed
        controller = sim._controller
        # Telemetry only (no-op without an active span): the restore
        # point shows up in the job's trace next to the retry events.
        from repro.obs.telemetry import add_event

        add_event("checkpoint.restore", cycle=sim.cycle)
    else:
        inst = standard_instance(p["topology"], p["size"])
        params = _effective_sim_parameters(p, inst.min_vcs)
        window = (
            p.get("fault_start", cycles // 4),
            p.get("fault_end", max(cycles // 4 + 1, cycles // 2)),
        )
        schedule = FaultSchedule.random(
            inst.topology,
            seed=derive_seed(job.seed, "faults"),
            link_faults=p.get("link_faults", 0),
            switch_faults=p.get("switch_faults", 1),
            transient_bursts=p.get("transient_bursts", 0),
            window=window,
            repair_after=p.get("repair_after"),
        )

        reset_packet_ids()
        sim = NocSimulator(
            inst.topology, inst.table, params,
            vc_assignment=inst.vc_assignment,
            kernel=p.get("kernel", "fast"),
        )
        sim.attach_fault_schedule(schedule)
        # Bounded retries keep the drain finite even when the controller
        # gives up and the run degrades to best-effort loss.
        sim.enable_retransmission(RetransmissionPolicy(max_retries=8))
        controller = RecoveryController()
        sim.attach_recovery_controller(controller)
        traffic = SyntheticTraffic(
            p.get("pattern", "uniform"),
            p.get("rate", 0.1),
            packet_size_flits=p.get("packet_size", 4),
            seed=job.seed,
        )
    obs = current_observer()
    if obs is not None:
        obs.attach(sim)
    survived = True
    try:
        if ckpt_store is not None:
            run_with_checkpoints(
                sim, cycles, traffic,
                store=ckpt_store, tag=job.key,
                interval=plan.interval, drain=True,
            )
        else:
            sim.run(max(0, cycles - sim.cycle), traffic, drain=True)
    except DrainTimeoutError:
        survived = False
    if ckpt_store is not None:
        # The job finished; its capsule has served its purpose.
        ckpt_store.discard(job.key)

    stats = sim.stats
    inis = sim.initiators.values()
    delivered = stats.packets_delivered
    lost = sum(ni.packets_lost for ni in inis)
    abandoned = sum(ni.packets_abandoned_unreachable for ni in inis)
    reachable = delivered + lost
    degraded = stats.degraded_latency_summary()
    return {
        "survived": survived,
        "survival_rate": delivered / reachable if reachable else None,
        "delivered": delivered,
        "lost": lost,
        "abandoned_unreachable": abandoned,
        "retransmitted": sum(ni.packets_retransmitted for ni in inis),
        "recovered": sum(ni.packets_recovered for ni in inis),
        "duplicates_discarded": sum(
            t.duplicates_discarded for t in sim.targets.values()
        ),
        "flits_dropped_by_faults": stats.flits_dropped_by_faults,
        "unroutable_injections": stats.unroutable_injections,
        "gave_up": controller.gave_up,
        "faults": [
            {"cycle": f.cycle, "kind": f.kind, "component": f.component}
            for f in stats.fault_events
        ],
        "recoveries": [
            {
                "detected_cycle": r.detected_cycle,
                "completed_cycle": r.completed_cycle,
                "detection_latency": r.detection_latency,
                "recovery_cycles": r.recovery_cycles,
                "blamed_links": r.blamed_links,
                "blamed_switches": r.blamed_switches,
                "routes_changed": r.routes_changed,
                "packets_purged": r.packets_purged,
                "transfers_abandoned": r.transfers_abandoned,
            }
            for r in stats.recoveries
        ],
        "healthy_latency_mean": degraded.healthy_mean,
        "degraded_latency_mean": degraded.degraded_mean,
        "latency_inflation": degraded.inflation,
    }


def _effective_sim_parameters(p: Mapping[str, Any], min_vcs: int):
    """NocParameters for a simulation job, honoring topology VC floors."""
    from repro.arch.parameters import DEFAULT_PARAMETERS
    from repro.lab.records import noc_parameters_from_dict

    params = (
        noc_parameters_from_dict(p["noc_params"])
        if p.get("noc_params")
        else DEFAULT_PARAMETERS
    )
    if params.num_vcs < min_vcs:
        params = params.with_(num_vcs=min_vcs)
    return params
