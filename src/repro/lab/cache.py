"""Content-addressed on-disk result cache.

Each cached payload lives at ``<root>/<key[:2]>/<key>.json`` where the
key is the job's content hash (spec + parameters + seed + code-version
salt, see :attr:`repro.lab.jobs.Job.key`).  Identity by content gives
the cache its two load-bearing properties:

* re-running a sweep recomputes only new or changed design points —
  unchanged jobs hash to the same key and hit;
* any change to the job spec, the seed, the runner version, or the
  library version changes the key, so stale results can never be
  returned — invalidation is structural, not TTL-based.

Writes are atomic (temp file + ``os.replace``) so a killed worker never
leaves a half-written entry; unreadable entries are treated as misses
and overwritten on the next compute.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterator, Optional, Union


class ResultCache:
    """Filesystem cache mapping content keys to JSON payloads."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        if len(key) < 3 or not key.isalnum():
            raise ValueError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The cached payload, or ``None`` on miss/corruption."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Atomically persist ``payload`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        """Every cached key; tolerant of concurrent eviction.

        The shard directories and their entries are snapshotted before
        yielding, and shards that vanish mid-scan (another process
        evicting or clearing) are silently skipped — iteration never
        raises because the cache shrank underneath it.
        """
        try:
            shards = sorted(
                entry
                for entry in self.root.iterdir()
                if entry.is_dir() and len(entry.name) == 2
            )
        except FileNotFoundError:
            return
        for shard in shards:
            try:
                names = sorted(p.stem for p in shard.glob("*.json"))
            except FileNotFoundError:
                continue
            yield from names

    def evict(self, key: str) -> bool:
        """Drop one entry; True if it existed."""
        path = self._path(key)
        try:
            path.unlink()
            return True
        except OSError:
            return False

    def clear(self) -> int:
        """Drop every entry; returns the number removed.

        Keys are snapshotted up front and entries already evicted by a
        concurrent writer are simply not counted.
        """
        removed = 0
        for key in list(self.keys()):
            removed += self.evict(key)
        return removed


class NullCache:
    """The ``--no-cache`` object: always misses, never stores."""

    hits = 0

    def __init__(self) -> None:
        self.misses = 0

    def get(self, key: str) -> Optional[dict]:
        self.misses += 1
        return None

    def put(self, key: str, payload: dict) -> None:
        pass

    def __contains__(self, key: str) -> bool:
        return False
