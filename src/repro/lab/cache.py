"""Content-addressed on-disk result cache.

Each cached payload lives at ``<root>/<key[:2]>/<key>.json`` where the
key is the job's content hash (spec + parameters + seed + code-version
salt, see :attr:`repro.lab.jobs.Job.key`).  Identity by content gives
the cache its two load-bearing properties:

* re-running a sweep recomputes only new or changed design points —
  unchanged jobs hash to the same key and hit;
* any change to the job spec, the seed, the runner version, or the
  library version changes the key, so stale results can never be
  returned — invalidation is structural, not TTL-based.

Writes are atomic (temp file + ``os.replace``) so a killed worker never
leaves a half-written entry.  Each entry is a checksummed envelope
(``{"__ck__": 1, "sha256": ..., "payload": ...}``): a torn, truncated,
or bit-flipped file is *detected* on read — counted, evicted, and
treated as a miss so the next compute rewrites it — rather than served
as a subtly wrong result.  Pre-envelope entries (no marker) still read
for compatibility; :meth:`ResultCache.verify` is the startup recovery
scan that audits every entry at once.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterator, Optional, Union

#: Envelope-format version for checksummed cache entries.
_ENVELOPE_VERSION = 1


def _payload_sha256(payload: dict) -> str:
    from repro.lab.hashing import canonical_json
    from repro.resilience.integrity import payload_digest

    return payload_digest(canonical_json(payload))


class ResultCache:
    """Filesystem cache mapping content keys to JSON payloads."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        #: Entries found corrupt (bad JSON or checksum mismatch) and
        #: evicted — by :meth:`get` or :meth:`verify`.
        self.corrupt = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        if len(key) < 3 or not key.isalnum():
            raise ValueError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def _unwrap(self, doc) -> Optional[dict]:
        """Envelope to payload; ``None`` when the checksum disagrees."""
        if not (isinstance(doc, dict) and doc.get("__ck__") is not None):
            return doc  # pre-envelope entry: accepted as-is
        payload = doc.get("payload")
        if (
            not isinstance(payload, dict)
            or doc.get("sha256") != _payload_sha256(payload)
        ):
            return None
        return payload

    def get(self, key: str) -> Optional[dict]:
        """The cached payload, or ``None`` on miss/corruption.

        Corruption — undecodable JSON or a checksum that no longer
        matches the payload — evicts the entry (so a later run
        recomputes and rewrites it) and counts in :attr:`corrupt`.
        """
        path = self._path(key)
        try:
            raw = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = self._unwrap(json.loads(raw))
            if payload is None:
                raise ValueError("cache entry checksum mismatch")
        except ValueError:
            self.corrupt += 1
            self.misses += 1
            self.evict(key)
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Atomically persist ``payload`` under ``key``, checksummed."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "__ck__": _ENVELOPE_VERSION,
            "sha256": _payload_sha256(payload),
            "payload": payload,
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def verify(self, repair: bool = True) -> dict:
        """Startup recovery scan: audit every entry, purge the broken.

        Checks each entry decodes and (for enveloped entries) that its
        checksum matches; with ``repair`` the failures are evicted so
        they recompute instead of lurking.  Stale temp files from
        writers killed mid-``put`` are removed too.  Returns a summary::

            {"entries": n, "corrupt": [...keys...], "legacy": n,
             "tempfiles_removed": n}
        """
        from repro.resilience.integrity import remove_stale_tempfiles

        corrupt = []
        legacy = 0
        entries = 0
        for key in list(self.keys()):
            entries += 1
            path = self._path(key)
            try:
                doc = json.loads(path.read_text())
            except (OSError, ValueError):
                corrupt.append(key)
                continue
            if not (isinstance(doc, dict) and doc.get("__ck__") is not None):
                legacy += 1
                continue
            if self._unwrap(doc) is None:
                corrupt.append(key)
        if repair:
            for key in corrupt:
                self.evict(key)
            self.corrupt += len(corrupt)
        return {
            "entries": entries,
            "corrupt": corrupt,
            "legacy": legacy,
            "tempfiles_removed": remove_stale_tempfiles(self.root),
        }

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        """Every cached key; tolerant of concurrent eviction.

        The shard directories and their entries are snapshotted before
        yielding, and shards that vanish mid-scan (another process
        evicting or clearing) are silently skipped — iteration never
        raises because the cache shrank underneath it.
        """
        try:
            shards = sorted(
                entry
                for entry in self.root.iterdir()
                if entry.is_dir() and len(entry.name) == 2
            )
        except FileNotFoundError:
            return
        for shard in shards:
            try:
                # isalnum() screens out `.tmp-*` files from an in-flight
                # (or crashed) atomic put — those are not entries.
                names = sorted(
                    p.stem for p in shard.glob("*.json") if p.stem.isalnum()
                )
            except FileNotFoundError:
                continue
            yield from names

    def evict(self, key: str) -> bool:
        """Drop one entry; True if it existed."""
        path = self._path(key)
        try:
            path.unlink()
            return True
        except OSError:
            return False

    def clear(self) -> int:
        """Drop every entry; returns the number removed.

        Keys are snapshotted up front and entries already evicted by a
        concurrent writer are simply not counted.
        """
        removed = 0
        for key in list(self.keys()):
            removed += self.evict(key)
        return removed


class NullCache:
    """The ``--no-cache`` object: always misses, never stores."""

    hits = 0

    def __init__(self) -> None:
        self.misses = 0

    def get(self, key: str) -> Optional[dict]:
        self.misses += 1
        return None

    def put(self, key: str, payload: dict) -> None:
        pass

    def __contains__(self, key: str) -> bool:
        return False
