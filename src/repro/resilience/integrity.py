"""Atomic writes and payload checksums — the crash-safety primitives.

Every durable artifact in the stack (cache entries, result stores,
checkpoints) must survive two failure modes:

* a writer killed mid-write must never leave a half-written file where
  a reader expects a whole one — solved by writing to a temp file in
  the *same directory* and ``os.replace``-ing it into place (atomic on
  POSIX within one filesystem);
* bytes rotted after the write (truncation, bit flips, a concurrent
  writer from a pre-hardening version) must be *detected*, not served —
  solved by storing a SHA-256 digest next to the payload and verifying
  it on read.

These helpers centralize both so cache/store/checkpoint code cannot
drift apart in how it touches disk.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Union


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".tmp-{path.name}-", suffix=".part"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` (UTF-8) to ``path`` atomically."""
    atomic_write_bytes(path, text.encode("utf-8"))


def payload_digest(canonical: Union[str, bytes]) -> str:
    """SHA-256 hex digest of an already-canonicalized payload form."""
    if isinstance(canonical, str):
        canonical = canonical.encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()


def remove_stale_tempfiles(directory: Union[str, Path]) -> int:
    """Delete orphaned ``.tmp-*`` / ``*.part`` files under ``directory``.

    A writer killed between ``mkstemp`` and ``os.replace`` leaves its
    temp file behind; it is garbage by construction (the rename never
    happened) and safe to remove on the next startup scan.  Returns the
    number removed.  Missing directories are a no-op.
    """
    directory = Path(directory)
    removed = 0
    if not directory.is_dir():
        return 0
    for entry in directory.rglob("*"):
        if not entry.is_file():
            continue
        if entry.name.startswith(".tmp-") or entry.suffix == ".part":
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
    return removed
