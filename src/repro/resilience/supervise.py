"""Supervised job execution: retries, deadlines, and quarantine.

``repro.lab``'s :class:`~repro.lab.executor.ProcessExecutor` assumes
workers never die: one SIGKILLed child (OOM killer, preemption, a
segfaulting native library) sinks the whole ``Pool.map``.
:class:`SupervisedExecutor` is the drop-in replacement that assumes the
opposite — workers *will* die — and turns each failure into policy:

* **worker death** (exit without a result) → retry with exponential
  backoff + seeded jitter, up to :attr:`RetryPolicy.max_attempts`;
* **runner exception** → same retry budget (a transient environment
  error deserves another try; a deterministic bug exhausts the budget);
* **wall-clock deadline** → cooperative cancellation first (the child's
  checkpointed run loop and observation boundaries raise
  :class:`~repro.lab.jobs.JobCancelled` at the next check), then
  ``terminate()``, then ``SIGKILL`` — a hung job cannot hold its slot
  forever;
* **budget exhausted** → the job is *quarantined*: its slot in the
  results list gets a structured failure record
  (:func:`quarantine_payload`) instead of poisoning the batch, and
  :func:`repro.lab.run_jobs` knows never to cache one.

Composes with checkpointing: give the executor a
:class:`~repro.resilience.checkpoint.CheckpointPlan` and every retry
resumes from the victim's last capsule instead of cycle zero.

Everything is deterministic given the seed — backoff jitter comes from
a seeded :class:`random.Random`, never the wall clock.
"""

from __future__ import annotations

import logging
import multiprocessing
import queue as queue_mod
import random
import time
from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional, Sequence

from repro.obs.telemetry import Span, Tracer, new_trace_id
from repro.resilience.checkpoint import (
    CheckpointPlan,
    use_cancel_event,
    use_checkpoint_plan,
)

log = logging.getLogger("repro.resilience")

#: Marker key of a quarantine record standing in for a result payload.
QUARANTINE_KEY = "__quarantined__"

#: Seconds a deadline-expired child gets to exit cooperatively before
#: escalation (terminate, then kill).
DEADLINE_GRACE_S = 1.0


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to fight for one job before quarantining it.

    ``delay_s`` grows exponentially from ``base_delay_s`` (doubling per
    attempt, capped at ``max_delay_s``) with up to ``jitter`` fractional
    randomization on top — the classic backoff-with-jitter shape that
    stops a burst of casualties from retrying in lockstep.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= max_delay_s")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        base = min(
            self.max_delay_s, self.base_delay_s * (2 ** max(0, attempt - 1))
        )
        return base * (1.0 + self.jitter * rng.random())

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "base_delay_s": self.base_delay_s,
            "max_delay_s": self.max_delay_s,
            "jitter": self.jitter,
        }


# ----------------------------------------------------------------------
# Quarantine records
# ----------------------------------------------------------------------
def quarantine_payload(item: Any, attempts: Sequence[Mapping]) -> dict:
    """The structured failure record standing in for a job's result.

    ``attempts`` is the full casualty list — one entry per try with its
    outcome (``died``/``error``/``deadline``) and diagnosis — so the
    record answers "what happened" without the executor's logs.
    """
    describe = getattr(item, "describe", None)
    return {
        QUARANTINE_KEY: True,
        "job": describe() if callable(describe) else repr(item),
        "key": getattr(item, "key", None),
        "attempts": [dict(a) for a in attempts],
        "reason": attempts[-1]["outcome"] if attempts else "unknown",
    }


def is_quarantined(payload: Any) -> bool:
    """True when ``payload`` is a quarantine record, not a result."""
    return isinstance(payload, Mapping) and payload.get(QUARANTINE_KEY) is True


# ----------------------------------------------------------------------
# Child process entry (module-level: must pickle under any start method)
# ----------------------------------------------------------------------
def _child_main(fn, item, results, cancel_event, plan) -> None:
    """Run ``fn(item)`` and report through the result queue.

    Installs the host's cancel event and checkpoint plan on their
    ContextVars so a checkpointing runner (e.g. ``fault_campaign``)
    both persists capsules and honors cooperative cancellation at every
    chunk boundary.
    """
    from repro.lab.jobs import JobCancelled

    try:
        with use_cancel_event(cancel_event), use_checkpoint_plan(plan):
            result = fn(item)
    except JobCancelled:
        results.put(("cancelled", None))
    except BaseException as exc:  # noqa: BLE001 — relayed, not swallowed
        results.put(("error", f"{type(exc).__name__}: {exc}"))
    else:
        results.put(("ok", result))


@dataclass
class _Run:
    """One item's supervision state inside :meth:`SupervisedExecutor.map`."""

    index: int
    item: Any
    attempts: List[dict] = field(default_factory=list)
    attempt: int = 0
    proc: Optional[multiprocessing.process.BaseProcess] = None
    queue: Any = None
    cancel_event: Any = None
    deadline_at: Optional[float] = None
    cancel_sent_at: Optional[float] = None
    terminated_at: Optional[float] = None
    backoff_until: float = 0.0
    result: Any = None
    done: bool = False
    trace_id: str = ""                 # one trace across every attempt
    span: Optional[Span] = None        # the live attempt's span


class SupervisedExecutor:
    """A process-per-job executor that survives its workers.

    Implements the :class:`repro.lab.executor.Executor` protocol
    (``map(fn, items)``), so it drops into :func:`repro.lab.run_jobs`::

        ex = SupervisedExecutor(workers=4, deadline_s=300.0,
                                plan=CheckpointPlan(".ckpt"))
        batch = run_jobs(jobs, executor=ex, cache=cache)
        # batch.quarantined lists what the policy gave up on

    Unlike a ``multiprocessing.Pool``, each item runs in its own child
    process with its own result queue, so one corpse is one retry — not
    a poisoned pool.  Results keep submission order; a quarantined item
    yields its :func:`quarantine_payload` in place.

    Counters (``supervisor.retries``, ``supervisor.worker_deaths``,
    ``supervisor.deadline_kills``, ``supervisor.quarantined``) land in
    ``registry`` — a :class:`repro.obs.MetricRegistry` — for the same
    observability story as the simulator's own components.
    """

    def __init__(
        self,
        workers: int = 2,
        policy: RetryPolicy = RetryPolicy(),
        deadline_s: Optional[float] = None,
        plan: Optional[CheckpointPlan] = None,
        seed: int = 0,
        registry=None,
        poll_s: float = 0.02,
        tracer: Optional[Tracer] = None,
    ):
        if workers < 1:
            raise ValueError("need at least one worker slot")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        self.workers = workers
        self.policy = policy
        self.deadline_s = deadline_s
        self.plan = plan
        self.poll_s = poll_s
        #: Optional distributed tracing: with a tracer (e.g. a
        #: TelemetryHub's) each item gets one trace and each attempt one
        #: span, so a batch's retries render the same way as served jobs.
        self.tracer = tracer
        self._rng = random.Random(seed)
        if registry is None:
            from repro.obs.metrics import MetricRegistry

            registry = MetricRegistry()
        self.registry = registry
        self.retries = registry.counter("supervisor.retries")
        self.worker_deaths = registry.counter("supervisor.worker_deaths")
        self.deadline_kills = registry.counter("supervisor.deadline_kills")
        self.quarantined_count = registry.counter("supervisor.quarantined")
        #: Quarantine records of the most recent :meth:`map` call.
        self.quarantine: List[dict] = []

    # ------------------------------------------------------------------
    def map(self, fn, items: Sequence) -> List:
        runs = [_Run(index=i, item=item) for i, item in enumerate(items)]
        self.quarantine = []
        if not runs:
            return []
        ctx = multiprocessing.get_context()
        pending = list(runs)       # not yet started (or awaiting retry)
        active: List[_Run] = []
        while pending or active:
            now = time.monotonic()
            # Fill free slots with runnable work (backoff respected).
            while pending and len(active) < self.workers:
                ready = next(
                    (r for r in pending if r.backoff_until <= now), None
                )
                if ready is None:
                    break
                pending.remove(ready)
                self._start(ctx, fn, ready)
                active.append(ready)
            for run in list(active):
                settled = self._poll(run, time.monotonic())
                if not settled:
                    continue
                active.remove(run)
                if not run.done:
                    pending.append(run)  # retrying (backoff set)
            if pending or active:
                time.sleep(self.poll_s)
        return [r.result for r in runs]

    # ------------------------------------------------------------------
    def _start(self, ctx, fn, run: _Run) -> None:
        run.attempt += 1
        run.queue = ctx.Queue()
        run.cancel_event = ctx.Event()
        run.cancel_sent_at = None
        run.terminated_at = None
        if self.tracer is not None:
            if not run.trace_id:
                run.trace_id = new_trace_id()
            describe = getattr(run.item, "describe", None)
            run.span = self.tracer.start_span(
                "supervised.attempt",
                trace_id=run.trace_id,
                attrs={
                    "item": (
                        describe() if callable(describe) else run.index
                    ),
                    "attempt": run.attempt,
                },
            )
        run.proc = ctx.Process(
            target=_child_main,
            args=(fn, run.item, run.queue, run.cancel_event, self.plan),
            daemon=True,
        )
        run.proc.start()
        run.deadline_at = (
            time.monotonic() + self.deadline_s
            if self.deadline_s is not None
            else None
        )

    def _end_span(self, run: _Run, status: str) -> None:
        if run.span is not None:
            run.span.end(status=status)
            run.span = None

    def _poll(self, run: _Run, now: float) -> bool:
        """Advance one run; True when it left the active set."""
        outcome = None
        try:
            outcome = run.queue.get_nowait()
        except (queue_mod.Empty, OSError):
            pass

        if outcome is not None:
            status, value = outcome
            self._reap(run)
            if status == "ok":
                self._end_span(run, "ok")
                run.result = value
                run.done = True
                return True
            if status == "cancelled":
                # Only we cancel (deadline): account it as such.
                return self._register_failure(
                    run, "deadline",
                    f"gave up cooperatively after {self.deadline_s}s",
                )
            return self._register_failure(run, "error", value)

        # Deadline escalation: cooperative -> terminate -> kill.
        if run.deadline_at is not None and now >= run.deadline_at:
            if run.cancel_sent_at is None:
                run.cancel_event.set()
                run.cancel_sent_at = now
            elif (
                run.terminated_at is None
                and now - run.cancel_sent_at >= DEADLINE_GRACE_S
            ):
                if run.proc.is_alive():
                    run.proc.terminate()
                run.terminated_at = now
            elif (
                run.terminated_at is not None
                and now - run.terminated_at >= DEADLINE_GRACE_S
            ):
                if run.proc.is_alive():
                    run.proc.kill()

        if run.proc.is_alive():
            return False
        # Dead without a message in the queue — but the queue feeder
        # thread may still be flushing; give it one more look.
        try:
            outcome = run.queue.get(timeout=0.05)
        except (queue_mod.Empty, OSError):
            outcome = None
        exitcode = run.proc.exitcode
        self._reap(run)
        if outcome is not None:
            status, value = outcome
            if status == "ok":
                self._end_span(run, "ok")
                run.result = value
                run.done = True
                return True
            if status == "cancelled":
                return self._register_failure(
                    run, "deadline",
                    f"gave up cooperatively after {self.deadline_s}s",
                )
            return self._register_failure(run, "error", value)
        if run.cancel_sent_at is not None:
            self.deadline_kills.inc()
            return self._register_failure(
                run, "deadline",
                f"killed after exceeding the {self.deadline_s}s deadline "
                f"(exitcode {exitcode})",
            )
        self.worker_deaths.inc()
        return self._register_failure(
            run, "died", f"worker process died (exitcode {exitcode})"
        )

    def _reap(self, run: _Run) -> None:
        if run.proc is not None:
            run.proc.join(timeout=5.0)
        if run.queue is not None:
            run.queue.close()

    def _register_failure(self, run: _Run, outcome: str, detail: str) -> bool:
        run.attempts.append(
            {"attempt": run.attempt, "outcome": outcome, "detail": detail}
        )
        self._end_span(run, f"failed:{outcome}")
        if run.attempt >= self.policy.max_attempts:
            record = quarantine_payload(run.item, run.attempts)
            run.result = record
            run.done = True
            self.quarantine.append(record)
            self.quarantined_count.inc()
            log.warning(
                "item %s quarantined after %d attempt(s)",
                record["job"],
                run.attempt,
                extra={
                    "trace_id": run.trace_id,
                    "outcome": outcome,
                    "detail": detail,
                },
            )
            return True
        self.retries.inc()
        delay = self.policy.delay_s(run.attempt, self._rng)
        run.backoff_until = time.monotonic() + delay
        log.info(
            "attempt %d failed (%s); retrying in %.3fs",
            run.attempt,
            outcome,
            delay,
            extra={
                "trace_id": run.trace_id,
                "outcome": outcome,
                "detail": detail,
                "backoff_s": round(delay, 4),
            },
        )
        return True
