"""repro.resilience — surviving the failures around the simulator.

PR 2 taught the *simulated fabric* to survive faults (live injection +
online recovery); this subsystem teaches the *execution stack* the same
trick.  The paper's thesis — NoCs shipped because they tolerated
real-world failure, not because the models were prettier — applies to
the toolchain too: a thousand-point sweep is only usable if a dead
worker, a corrupted cache entry, or a preempted host costs one retry,
not the batch.

Pieces:

* :mod:`repro.resilience.integrity` — atomic writes and checksummed
  payloads, shared by the cache, the stores, and the checkpoints;
* :mod:`repro.resilience.checkpoint` — versioned simulator state
  capsules (:func:`snapshot_simulator` / :func:`restore_simulator`),
  an atomic on-disk :class:`CheckpointStore`, and
  :func:`run_with_checkpoints`, the chunked run loop that persists a
  capsule every N cycles so an interrupted job resumes byte-identically;
* :mod:`repro.resilience.supervise` — :class:`RetryPolicy` (exponential
  backoff + seeded jitter), :class:`SupervisedExecutor` (process-per-job
  execution with death detection, wall-clock deadlines with
  cooperative-then-hard cancellation, and poison-job quarantine), and
  the quarantine record helpers shared with :mod:`repro.serve`;
* :mod:`repro.resilience.chaos` — seeded fault-injection campaigns
  against a live server (worker kills, cache corruption, stalled
  streams) asserting that every job still finishes correctly or is
  explicitly quarantined.

Checkpointing and supervision are *opt-in side channels*: neither
enters a job's cache key, and a checkpointing-off run is byte-identical
to one that never heard of this module.
"""

from repro.resilience.chaos import (
    ChaosConfig,
    ChaosReport,
    build_campaign_jobs,
    run_chaos_campaign,
)
from repro.resilience.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointPlan,
    CheckpointStore,
    CheckpointVersionError,
    current_cancel_event,
    current_checkpoint_plan,
    restore_simulator,
    run_with_checkpoints,
    snapshot_simulator,
    use_cancel_event,
    use_checkpoint_plan,
    validate_capsule,
)
from repro.resilience.integrity import (
    atomic_write_bytes,
    atomic_write_text,
    payload_digest,
)
from repro.resilience.supervise import (
    QUARANTINE_KEY,
    RetryPolicy,
    SupervisedExecutor,
    is_quarantined,
    quarantine_payload,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "ChaosConfig",
    "ChaosReport",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointPlan",
    "CheckpointStore",
    "CheckpointVersionError",
    "QUARANTINE_KEY",
    "RetryPolicy",
    "SupervisedExecutor",
    "atomic_write_bytes",
    "atomic_write_text",
    "build_campaign_jobs",
    "current_cancel_event",
    "current_checkpoint_plan",
    "is_quarantined",
    "payload_digest",
    "quarantine_payload",
    "restore_simulator",
    "run_chaos_campaign",
    "run_with_checkpoints",
    "snapshot_simulator",
    "use_cancel_event",
    "use_checkpoint_plan",
    "validate_capsule",
]
