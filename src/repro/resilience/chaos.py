"""Infrastructure chaos harness: prove the serving stack survives.

A resilience claim that was never exercised is a hope.  This module
runs a *seeded chaos campaign* against a live, process-worker
:class:`~repro.serve.server.SimulationServer`:

* a **killer** thread SIGKILLs worker processes mid-job (aimed via
  :meth:`~repro.serve.workers.WorkerBridge.active_pids`),
* a **corrupter** thread flips bytes in / truncates on-disk cache
  entries while the server is reading and writing them,
* **staller** threads open NDJSON stream connections and stop reading,
* optional **poison** jobs exceed the per-job deadline on every attempt,

and then audits the wreckage against the ground truth (every job's
result computed locally, in-process, before any chaos starts):

* every submitted job reached a terminal state — nothing lost or hung;
* every ``done`` job's result is byte-identical (canonical JSON) to its
  reference — kills, resumes, and retries never changed an answer;
* every non-finished job is *explicitly* accounted: quarantined with a
  structured record after the retry budget, never silently failed;
* no corrupted cache entry is ever served — each reads back as a miss
  (detected and evicted) or as the exact reference payload.

Everything that varies is derived from ``ChaosConfig.seed``; wall-clock
interleaving is inherently nondeterministic, but the verdict —
:attr:`ChaosReport.ok` — must hold for every interleaving.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.lab.cache import ResultCache
from repro.lab.hashing import canonical_json
from repro.lab.jobs import Job, run_job
from repro.resilience.checkpoint import CheckpointPlan
from repro.resilience.supervise import RetryPolicy


@dataclass(frozen=True)
class ChaosConfig:
    """One campaign's shape; everything random derives from ``seed``."""

    jobs: int = 20
    seed: int = 7
    workers: int = 2
    cycles: int = 3000
    #: Jobs sized to blow the deadline on every attempt (quarantine
    #: expected).  Requires ``deadline_s``.
    poison_jobs: int = 1
    #: Checkpoint-capable fault-campaign jobs in the mix.
    fault_jobs: int = 2
    deadline_s: Optional[float] = 8.0
    max_attempts: int = 4
    checkpoint_interval: int = 1000
    kill_interval_s: float = 0.4
    max_kills: int = 5
    corrupt_interval_s: float = 0.5
    max_corruptions: int = 4
    stall_streams: int = 2
    stall_hold_s: float = 1.5
    wait_timeout_s: float = 300.0
    #: Simulation kernel for every job in the campaign (None = the
    #: job-runner default).  All kernels are byte-identical, so the
    #: pre-chaos reference fingerprints stay valid either way.
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        if self.jobs < self.poison_jobs + self.fault_jobs + 1:
            raise ValueError("jobs must leave room for at least one "
                             "plain job beside poison/fault jobs")
        if self.poison_jobs and self.deadline_s is None:
            raise ValueError("poison jobs need a deadline_s to blow")

    def to_dict(self) -> dict:
        return {
            "jobs": self.jobs, "seed": self.seed, "workers": self.workers,
            "cycles": self.cycles, "poison_jobs": self.poison_jobs,
            "fault_jobs": self.fault_jobs, "deadline_s": self.deadline_s,
            "max_attempts": self.max_attempts,
            "checkpoint_interval": self.checkpoint_interval,
            "max_kills": self.max_kills,
            "max_corruptions": self.max_corruptions,
            "stall_streams": self.stall_streams,
            "kernel": self.kernel,
        }


@dataclass
class ChaosReport:
    """The audited outcome of one campaign; ``ok`` is the verdict."""

    config: dict
    jobs_total: int = 0
    completed: int = 0
    quarantined: int = 0
    poison_quarantined: int = 0
    failed_unexpected: int = 0
    lost: int = 0
    mismatches: int = 0
    kills: int = 0
    corruptions: int = 0
    corrupt_detected: int = 0
    corrupt_served_wrong: int = 0
    stalls: int = 0
    server_retries: int = 0
    deadline_expired: int = 0
    elapsed_s: float = 0.0
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every job accounted for, every answer right, nothing hidden."""
        return (
            self.lost == 0
            and self.mismatches == 0
            and self.failed_unexpected == 0
            and self.corrupt_served_wrong == 0
            and self.completed + self.quarantined == self.jobs_total
        )

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "config": self.config,
            "jobs_total": self.jobs_total,
            "completed": self.completed,
            "quarantined": self.quarantined,
            "poison_quarantined": self.poison_quarantined,
            "failed_unexpected": self.failed_unexpected,
            "lost": self.lost,
            "mismatches": self.mismatches,
            "kills": self.kills,
            "corruptions": self.corruptions,
            "corrupt_detected": self.corrupt_detected,
            "corrupt_served_wrong": self.corrupt_served_wrong,
            "stalls": self.stalls,
            "server_retries": self.server_retries,
            "deadline_expired": self.deadline_expired,
            "elapsed_s": round(self.elapsed_s, 3),
            "notes": self.notes,
        }


# ----------------------------------------------------------------------
# Campaign construction
# ----------------------------------------------------------------------
def build_campaign_jobs(config: ChaosConfig) -> Tuple[List[Job], Set[str]]:
    """The deterministic job list and the keys expected to quarantine."""
    jobs: List[Job] = []
    kernel = {} if config.kernel is None else {"kernel": config.kernel}
    plain = config.jobs - config.poison_jobs - config.fault_jobs
    for i in range(plain):
        jobs.append(Job(
            kind="load_point",
            params={
                "topology": "mesh", "size": 4, "pattern": "uniform",
                "rate": round(0.04 + 0.01 * (i % 8), 3),
                "cycles": config.cycles,
                "warmup": min(250, config.cycles // 4),
                "packet_size": 4, **kernel,
            },
            seed=config.seed * 1000 + i,
            tags=("chaos",),
        ))
    for i in range(config.fault_jobs):
        jobs.append(Job(
            kind="fault_campaign",
            params={
                "topology": "mesh", "size": 4, "rate": 0.08,
                "cycles": config.cycles, "switch_faults": 1,
                "packet_size": 4, **kernel,
            },
            seed=config.seed * 1000 + 500 + i,
            tags=("chaos", "faults"),
        ))
    poison_keys: Set[str] = set()
    for i in range(config.poison_jobs):
        # Big enough that no attempt beats the deadline, small enough
        # to clear the server's per-job cycle quota.
        job = Job(
            kind="load_point",
            params={
                "topology": "mesh", "size": 8, "pattern": "uniform",
                "rate": 0.25, "cycles": 900_000, "warmup": 1000,
                "packet_size": 4, **kernel,
            },
            seed=config.seed * 1000 + 900 + i,
            tags=("chaos", "poison"),
        )
        jobs.append(job)
        poison_keys.add(job.key)
    return jobs, poison_keys


def _compute_references(
    jobs: List[Job], poison_keys: Set[str]
) -> Dict[str, str]:
    """key -> canonical-JSON fingerprint, computed before any chaos."""
    references: Dict[str, str] = {}
    for job in jobs:
        if job.key in poison_keys:
            continue
        references[job.key] = canonical_json(run_job(job))
    return references


# ----------------------------------------------------------------------
# Chaos agents (threads against the live server)
# ----------------------------------------------------------------------
class _Killer(threading.Thread):
    """SIGKILL a random active worker process every interval."""

    def __init__(self, bridge, rng: random.Random, config: ChaosConfig,
                 report: ChaosReport, stop: threading.Event):
        super().__init__(name="chaos-killer", daemon=True)
        self.bridge, self.rng, self.config = bridge, rng, config
        self.report, self.stop = report, stop

    def run(self) -> None:
        while not self.stop.is_set() and (
            self.report.kills < self.config.max_kills
        ):
            if self.stop.wait(self.config.kill_interval_s):
                return
            pids = self.bridge.active_pids()
            if not pids:
                continue
            try:
                os.kill(self.rng.choice(pids), signal.SIGKILL)
                self.report.kills += 1
            except (ProcessLookupError, PermissionError):
                pass  # won the race against a clean exit


class _Corrupter(threading.Thread):
    """Truncate or bit-flip a random on-disk cache entry."""

    def __init__(self, cache_dir: Path, rng: random.Random,
                 config: ChaosConfig, report: ChaosReport,
                 stop: threading.Event, victims: Set[str]):
        super().__init__(name="chaos-corrupter", daemon=True)
        self.cache_dir, self.rng, self.config = cache_dir, rng, config
        self.report, self.stop, self.victims = report, stop, victims

    def run(self) -> None:
        while not self.stop.is_set() and (
            self.report.corruptions < self.config.max_corruptions
        ):
            if self.stop.wait(self.config.corrupt_interval_s):
                return
            entries = sorted(self.cache_dir.glob("??/*.json"))
            fresh = [e for e in entries if e.stem not in self.victims]
            if not fresh:
                continue
            target = self.rng.choice(fresh)
            try:
                data = target.read_bytes()
                if self.rng.random() < 0.5 and len(data) > 8:
                    # torn write: keep a prefix
                    target.write_bytes(data[: len(data) // 2])
                elif data:
                    flip = self.rng.randrange(len(data) // 2, len(data))
                    corrupted = bytearray(data)
                    corrupted[flip] ^= 0x01
                    target.write_bytes(bytes(corrupted))
                else:
                    continue
            except OSError:
                continue
            self.victims.add(target.stem)
            self.report.corruptions += 1


class _Staller(threading.Thread):
    """Open a stream connection, read a little, then go silent."""

    def __init__(self, host: str, port: int, job_id: str, hold_s: float,
                 report: ChaosReport):
        super().__init__(name="chaos-staller", daemon=True)
        self.host, self.port, self.job_id = host, port, job_id
        self.hold_s, self.report = hold_s, report

    def run(self) -> None:
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=10.0
            )
        except OSError:
            return
        try:
            request = (
                f"GET /jobs/{self.job_id}/stream HTTP/1.1\r\n"
                f"Host: {self.host}\r\nConnection: close\r\n\r\n"
            )
            sock.sendall(request.encode("latin-1"))
            sock.recv(256)        # headers + a frame or two, then stall
            self.report.stalls += 1
            time.sleep(self.hold_s)
        except OSError:
            pass
        finally:
            sock.close()


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------
def run_chaos_campaign(
    config: ChaosConfig = ChaosConfig(),
    root: Optional[str] = None,
) -> ChaosReport:
    """Run one seeded campaign against a live server; audit everything.

    ``root`` holds the cache and checkpoint directories (a fresh temp
    directory when omitted — a warm cache would defeat the point).
    """
    from repro.serve.session import SessionQuota
    from repro.serve.testing import ServerThread

    rng = random.Random(config.seed)
    report = ChaosReport(config=config.to_dict())
    base = Path(root) if root is not None else Path(tempfile.mkdtemp(
        prefix="repro-chaos-"
    ))
    cache_dir = base / "cache"
    ckpt_dir = base / "checkpoints"

    jobs, poison_keys = build_campaign_jobs(config)
    report.jobs_total = len(jobs)
    references = _compute_references(jobs, poison_keys)

    stop = threading.Event()
    victims: Set[str] = set()
    started = time.monotonic()
    with ServerThread(
        worker_mode="process",
        workers=config.workers,
        cache=ResultCache(cache_dir),
        quota=SessionQuota(
            max_concurrent=max(8, config.workers * 2),
            max_queue_depth=max(32, config.jobs),
            max_cycles=1_000_000,
        ),
        retry_policy=RetryPolicy(
            max_attempts=config.max_attempts, base_delay_s=0.05
        ),
        job_deadline_s=config.deadline_s,
        checkpoint_plan=CheckpointPlan(
            directory=str(ckpt_dir), interval=config.checkpoint_interval
        ),
        retry_seed=config.seed,
    ) as srv:
        client = srv.client(
            session="chaos",
            retry_policy=RetryPolicy(max_attempts=4, base_delay_s=0.1),
            retry_seed=config.seed,
        )
        killer = _Killer(srv.server.bridge, rng, config, report, stop)
        corrupter = _Corrupter(
            cache_dir, rng, config, report, stop, victims
        )
        killer.start()
        corrupter.start()

        submitted: List[Tuple[Job, str]] = []
        for job in jobs:
            doc = client.submit(
                job.kind, dict(job.params), seed=job.seed, tags=job.tags
            )
            submitted.append((job, doc["id"]))

        for i in range(config.stall_streams):
            _, job_id = submitted[i % len(submitted)]
            _Staller(
                srv.host, srv.port, job_id, config.stall_hold_s, report
            ).start()

        deadline = time.monotonic() + config.wait_timeout_s
        outcomes: List[Tuple[Job, Optional[dict]]] = []
        for job, job_id in submitted:
            budget = deadline - time.monotonic()
            try:
                doc = client.wait(job_id, timeout=max(1.0, budget))
            except TimeoutError:
                report.lost += 1
                report.notes.append(f"{job_id} never reached a terminal "
                                    f"state ({job.kind})")
                doc = None
            outcomes.append((job, doc))

        stop.set()
        killer.join(timeout=5.0)
        corrupter.join(timeout=5.0)
        stats = srv.server.stats()
        report.server_retries = stats["supervision"]["retries"]
        report.deadline_expired = stats["supervision"]["deadline_expired"]

    report.elapsed_s = time.monotonic() - started

    # ------------------------------------------------------------------
    # Audit: every job accounted for, every answer byte-identical.
    # ------------------------------------------------------------------
    for job, doc in outcomes:
        if doc is None:
            continue  # already counted lost
        poison = job.key in poison_keys
        if doc["state"] == "done":
            report.completed += 1
            if poison:
                report.notes.append(f"poison job {job.key[:8]} finished "
                                    "inside its deadline")
            elif canonical_json(doc.get("result")) != references[job.key]:
                report.mismatches += 1
                report.notes.append(f"{job.key[:8]} result diverged "
                                    "from its pre-chaos reference")
        elif doc.get("quarantined"):
            report.quarantined += 1
            if poison:
                report.poison_quarantined += 1
        else:
            report.failed_unexpected += 1
            report.notes.append(f"{job.key[:8]} failed without quarantine: "
                                f"{doc.get('error')}")

    # Corrupted entries must never read back wrong: a checksummed miss
    # (detected, evicted) or the intact reference payload are the only
    # acceptable outcomes.
    audit_cache = ResultCache(cache_dir)
    for key in sorted(victims):
        payload = audit_cache.get(key)
        if payload is None:
            report.corrupt_detected += 1
        elif (
            key in references
            and canonical_json(payload) != references[key]
        ):
            report.corrupt_served_wrong += 1
            report.notes.append(f"corrupted cache entry {key[:8]} was "
                                "served with a wrong payload")
    return report
