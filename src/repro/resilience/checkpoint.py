"""Versioned simulator state capsules and the checkpointed run loop.

A *capsule* is one ``bytes`` blob holding everything cycle ``c+1``
depends on: the pickled :class:`~repro.sim.simulator.NocSimulator`
(component state, in-flight flits, RNG streams, fault/recovery state,
statistics), the traffic generator with its buffered lookahead draws,
and the global packet-id watermark.  The layout is::

    MAGIC | sha256(body) hex | "\\n" | pickle(body)

so corruption is detected *before* unpickling, and a version stamp
inside the body rejects capsules from an incompatible library.

Byte-identity is the contract, leaning on two established invariants:

* splitting ``sim.run(N)`` into chunks is result-identical (the fast
  kernel's skip horizon only shrinks at chunk ends — skipping less is
  always safe, PR 4);
* observation never changes results (PR 3), so capsules exclude
  recorders/probes and the host re-attaches them after restore.

:func:`run_with_checkpoints` is the production loop: run a chunk, save
a capsule atomically, repeat — a job killed at any point resumes from
the last capsule and finishes byte-identical to an uninterrupted run
(``tests/resilience/test_checkpoint.py`` proves it against the PR-4
fingerprint machinery).

Checkpointing reaches job runners through a :class:`CheckpointPlan` on
a ``ContextVar`` — the same side-channel pattern as
:class:`repro.lab.JobObserver` — so it never enters a job's cache key.
"""

from __future__ import annotations

import pickle
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

from repro.resilience.integrity import (
    atomic_write_bytes,
    payload_digest,
    remove_stale_tempfiles,
)

#: Bump when the capsule layout or the pickled state shape changes.
CHECKPOINT_VERSION = 1

_MAGIC = b"repro-ckpt\x00"
_DIGEST_LEN = 64  # sha256 hexdigest


class CheckpointError(RuntimeError):
    """Base class for capsule load failures."""


class CheckpointCorruptError(CheckpointError):
    """The capsule is damaged: bad magic, checksum, or pickle body."""


class CheckpointVersionError(CheckpointError):
    """The capsule was written by an incompatible library version."""


# ----------------------------------------------------------------------
# Capsule encode / decode
# ----------------------------------------------------------------------
def snapshot_simulator(sim, traffic=None) -> bytes:
    """Serialize ``(sim, traffic)`` into a checksummed capsule."""
    from repro.arch.packet import packet_id_watermark

    body = pickle.dumps(
        {
            "version": CHECKPOINT_VERSION,
            "cycle": sim.cycle,
            "packet_watermark": packet_id_watermark(),
            "sim": sim,
            "traffic": traffic,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    digest = payload_digest(body).encode("ascii")
    return _MAGIC + digest + b"\n" + body


def validate_capsule(capsule: bytes) -> bytes:
    """Checksum-verify a capsule and return its pickle body.

    Cheap (no unpickling); raises :class:`CheckpointCorruptError` on any
    structural or checksum damage.
    """
    if not capsule.startswith(_MAGIC):
        raise CheckpointCorruptError("not a checkpoint capsule (bad magic)")
    rest = capsule[len(_MAGIC):]
    if len(rest) < _DIGEST_LEN + 1 or rest[_DIGEST_LEN:_DIGEST_LEN + 1] != b"\n":
        raise CheckpointCorruptError("truncated checkpoint capsule")
    digest = rest[:_DIGEST_LEN].decode("ascii", "replace")
    body = rest[_DIGEST_LEN + 1:]
    if payload_digest(body) != digest:
        raise CheckpointCorruptError(
            "checkpoint capsule failed its checksum (corrupt or truncated)"
        )
    return body


def restore_simulator(capsule: bytes):
    """Rebuild ``(sim, traffic)`` from a capsule.

    Restores the global packet-id watermark as a side effect, so packet
    ids continue exactly where the snapshotted run stopped.
    """
    from repro.arch.packet import set_packet_id_watermark

    body = validate_capsule(capsule)
    try:
        doc = pickle.loads(body)
    except Exception as exc:  # pickle raises a zoo of types
        raise CheckpointCorruptError(
            f"checkpoint body failed to unpickle: {exc}"
        ) from exc
    if not isinstance(doc, dict) or "sim" not in doc:
        raise CheckpointCorruptError("checkpoint body has the wrong shape")
    if doc.get("version") != CHECKPOINT_VERSION:
        raise CheckpointVersionError(
            f"checkpoint version {doc.get('version')!r} != "
            f"supported {CHECKPOINT_VERSION}"
        )
    set_packet_id_watermark(doc["packet_watermark"])
    return doc["sim"], doc["traffic"]


# ----------------------------------------------------------------------
# On-disk checkpoint store
# ----------------------------------------------------------------------
class CheckpointStore:
    """A directory of capsules, one per job tag, written atomically.

    Tags are content keys or other filesystem-safe identifiers; each
    maps to ``<root>/<tag>.ckpt``.  ``save`` is atomic (temp file +
    rename), so readers only ever see whole capsules; whatever damage
    happens after the write is caught by the capsule checksum.
    """

    suffix = ".ckpt"

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.corrupt_discarded = 0

    def path_for(self, tag: str) -> Path:
        if not tag or not all(c.isalnum() or c in "-_." for c in tag):
            raise ValueError(f"malformed checkpoint tag {tag!r}")
        return self.root / f"{tag}{self.suffix}"

    def save(self, tag: str, capsule: bytes) -> Path:
        path = self.path_for(tag)
        atomic_write_bytes(path, capsule)
        return path

    def load(self, tag: str) -> Optional[bytes]:
        """Raw capsule bytes, or ``None`` when absent."""
        try:
            return self.path_for(tag).read_bytes()
        except OSError:
            return None

    def try_restore(self, tag: str):
        """``(sim, traffic)`` from the tagged capsule, or ``None``.

        A damaged or version-incompatible capsule is *discarded* (the
        job simply restarts from zero) rather than raised — a rotten
        checkpoint must never be worse than no checkpoint.
        """
        capsule = self.load(tag)
        if capsule is None:
            return None
        try:
            return restore_simulator(capsule)
        except CheckpointError:
            self.corrupt_discarded += 1
            self.discard(tag)
            return None

    def discard(self, tag: str) -> bool:
        try:
            self.path_for(tag).unlink()
            return True
        except OSError:
            return False

    def tags(self) -> Iterator[str]:
        try:
            names = sorted(
                p.name for p in self.root.glob(f"*{self.suffix}")
            )
        except FileNotFoundError:
            return
        for name in names:
            yield name[: -len(self.suffix)]

    def recovery_scan(self) -> dict:
        """Startup pass: drop temp-file orphans and corrupt capsules.

        Validates every capsule's checksum (without unpickling) and
        removes the ones that fail, so a later resume can trust whatever
        the scan left behind.  Returns a summary dict.
        """
        tmp_removed = remove_stale_tempfiles(self.root)
        corrupt = []
        kept = 0
        for tag in list(self.tags()):
            capsule = self.load(tag)
            if capsule is None:
                continue
            try:
                validate_capsule(capsule)
                kept += 1
            except CheckpointError:
                corrupt.append(tag)
                self.discard(tag)
        self.corrupt_discarded += len(corrupt)
        return {
            "root": str(self.root),
            "checkpoints": kept,
            "corrupt_removed": corrupt,
            "tempfiles_removed": tmp_removed,
        }


# ----------------------------------------------------------------------
# Plan side-channel (mirrors repro.lab's JobObserver ContextVar)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CheckpointPlan:
    """Where and how often the current job should checkpoint.

    Plain data (a directory path and an interval) so it crosses process
    boundaries in worker payloads.  Never part of a job spec: the plan
    rides a ``ContextVar``, exactly like :class:`repro.lab.JobObserver`,
    so cache keys and results are identical with or without one.
    """

    directory: str
    interval: int = 10_000

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError("checkpoint interval must be >= 1 cycle")

    def store(self) -> CheckpointStore:
        return CheckpointStore(self.directory)


_PLAN: ContextVar[Optional[CheckpointPlan]] = ContextVar(
    "repro_resilience_checkpoint_plan", default=None
)

#: Cooperative-cancellation side channel: a supervised worker installs
#: the host's cancel event here so the checkpointed run loop can honor
#: a deadline/cancel at every chunk boundary (see supervise._child_main).
_CANCEL: ContextVar[Optional[object]] = ContextVar(
    "repro_resilience_cancel_event", default=None
)


def current_checkpoint_plan() -> Optional[CheckpointPlan]:
    """The active plan, if the host installed one for this job."""
    return _PLAN.get()


@contextmanager
def use_checkpoint_plan(plan: Optional[CheckpointPlan]):
    token = _PLAN.set(plan)
    try:
        yield plan
    finally:
        _PLAN.reset(token)


def current_cancel_event():
    """The host's cancellation event for the running job, if any."""
    return _CANCEL.get()


@contextmanager
def use_cancel_event(event):
    token = _CANCEL.set(event)
    try:
        yield event
    finally:
        _CANCEL.reset(token)


# ----------------------------------------------------------------------
# The checkpointed run loop
# ----------------------------------------------------------------------
def run_with_checkpoints(
    sim,
    cycles: int,
    traffic=None,
    *,
    store: CheckpointStore,
    tag: str,
    interval: int = 10_000,
    drain: bool = False,
    max_drain_cycles: int = 50_000,
):
    """Run ``sim`` to absolute cycle ``cycles``, capsuled every ``interval``.

    Semantically identical to ``sim.run(cycles - sim.cycle, traffic,
    drain=...)`` — chunked runs are byte-identical to one run — except
    that after every chunk the full state lands in ``store`` under
    ``tag``.  A resumed simulator (``sim.cycle > 0``) picks up exactly
    where its capsule stopped; a simulator already past ``cycles``
    (killed mid-drain) goes straight to the drain.

    Honors :func:`current_cancel_event` at every chunk boundary by
    raising :class:`repro.lab.JobCancelled`, which makes cancellation
    cooperative at checkpoint granularity for supervised workers.

    Returns ``sim.stats``.
    """
    if interval < 1:
        raise ValueError("checkpoint interval must be >= 1 cycle")
    if cycles < 0:
        raise ValueError("cycles must be non-negative")

    def _check_cancel() -> None:
        event = current_cancel_event()
        if event is not None and event.is_set():
            from repro.lab.jobs import JobCancelled

            raise JobCancelled()

    from repro.obs.telemetry import add_event

    while sim.cycle < cycles:
        _check_cancel()
        chunk = min(interval, cycles - sim.cycle)
        sim.run(chunk, traffic)
        store.save(tag, snapshot_simulator(sim, traffic))
        # Telemetry only (no-op without an active span): the worker's
        # span records where a later resume could pick up.
        add_event("checkpoint.save", cycle=sim.cycle)
    if drain:
        _check_cancel()
        sim.run(0, traffic, drain=True, max_drain_cycles=max_drain_cycles)
    return sim.stats
