"""Through-silicon-via (TSV) models and vertical-link serialization.

Section 4.4: "3D integration still has to solve some shortcomings, such
as the yield of vertical connections, the area overhead ... area and
yield have been optimized by suitably serializing vertical links, to
minimize the number of required vertical vias."

A vertical link of ``width`` bits serialized by factor ``f`` needs
``ceil(width / f) + control`` TSVs: fewer vias means less area and a
higher link yield (each via fails independently), at the cost of ``f``
cycles of serialization latency and ``1/f`` of the bandwidth.
:func:`optimize_serialization` picks the factor that minimizes a
weighted cost subject to a bandwidth floor — the optimization the
iNoCs 3D flow performs (Fig. 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

# Control TSVs per vertical link (clock/valid/flow control).
_CONTROL_TSVS = 4


@dataclass(frozen=True)
class TsvTechnology:
    """Vertical-interconnect process parameters."""

    pitch_um: float = 10.0           # TSV pitch (keep-out included)
    yield_per_tsv: float = 0.9999    # probability one TSV works
    delay_ps: float = 25.0           # via traversal delay

    def __post_init__(self) -> None:
        if self.pitch_um <= 0:
            raise ValueError("pitch must be positive")
        if not 0.0 < self.yield_per_tsv <= 1.0:
            raise ValueError("yield must be in (0, 1]")
        if self.delay_ps < 0:
            raise ValueError("delay must be non-negative")

    @property
    def area_per_tsv_mm2(self) -> float:
        return (self.pitch_um * 1e-3) ** 2


@dataclass(frozen=True)
class VerticalLinkDesign:
    """One serialized vertical link configuration."""

    width_bits: int
    serialization: int       # flits are split into this many phits
    tsv_count: int
    area_mm2: float
    link_yield: float
    extra_latency_cycles: int
    bandwidth_fraction: float  # of an unserialized link

    def __repr__(self) -> str:
        return (
            f"VerticalLinkDesign(width={self.width_bits}, f={self.serialization}, "
            f"tsvs={self.tsv_count}, yield={self.link_yield:.4f})"
        )


def design_vertical_link(
    width_bits: int,
    serialization: int,
    tech: Optional[TsvTechnology] = None,
) -> VerticalLinkDesign:
    """Characterize one (width, serialization factor) choice."""
    tech = tech or TsvTechnology()
    if width_bits < 1:
        raise ValueError("width must be >= 1")
    if serialization < 1 or serialization > width_bits:
        raise ValueError("serialization factor must be in [1, width]")
    data_tsvs = math.ceil(width_bits / serialization)
    tsvs = data_tsvs + _CONTROL_TSVS
    return VerticalLinkDesign(
        width_bits=width_bits,
        serialization=serialization,
        tsv_count=tsvs,
        area_mm2=tsvs * tech.area_per_tsv_mm2,
        link_yield=tech.yield_per_tsv**tsvs,
        extra_latency_cycles=serialization - 1,
        bandwidth_fraction=1.0 / serialization,
    )


def optimize_serialization(
    width_bits: int,
    required_bandwidth_fraction: float,
    tech: Optional[TsvTechnology] = None,
    area_weight: float = 1.0,
    yield_weight: float = 1.0,
    latency_weight: float = 0.02,
) -> VerticalLinkDesign:
    """Pick the serialization factor minimizing a weighted cost.

    The feasible set is every factor whose residual bandwidth meets
    ``required_bandwidth_fraction``; among those, cost = normalized
    area + failure probability + weighted latency.
    """
    if not 0.0 < required_bandwidth_fraction <= 1.0:
        raise ValueError("bandwidth requirement must be in (0, 1]")
    tech = tech or TsvTechnology()
    full = design_vertical_link(width_bits, 1, tech)
    best: Optional[VerticalLinkDesign] = None
    best_cost = math.inf
    for f in range(1, width_bits + 1):
        candidate = design_vertical_link(width_bits, f, tech)
        if candidate.bandwidth_fraction < required_bandwidth_fraction:
            break  # factors only get worse from here
        cost = (
            area_weight * candidate.area_mm2 / full.area_mm2
            + yield_weight * (1.0 - candidate.link_yield)
            + latency_weight * candidate.extra_latency_cycles
        )
        if cost < best_cost:
            best, best_cost = candidate, cost
    if best is None:  # pragma: no cover - f=1 always feasible
        raise RuntimeError("no feasible serialization factor")
    return best


def stack_yield(per_link: List[VerticalLinkDesign]) -> float:
    """Probability every vertical link in the stack works."""
    out = 1.0
    for link in per_link:
        out *= link.link_yield
    return out
