"""3D topology synthesis — SunFloor 3D lite [12].

"SunFloor 3D: A Tool for Networks on Chip Topology Synthesis for 3D
Systems on Chip" extends the custom-topology flow to stacked dies: cores
are pre-assigned to layers, each layer gets its own switches, and
inter-layer flows ride serialized TSV links between vertically adjacent
switches.

The comparison the 3D avenue of the paper's conclusion rests on: for a
spec too large to floorplan compactly in 2D, stacking cuts the
route-weighted wire length (vertical hops are ~50 um instead of
millimeters), reducing wire power and latency, at the cost of TSV area
and stack yield.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.evaluate import DesignEvaluator, DesignPoint
from repro.core.spec import CommunicationSpec, CoreSpec, FlowSpec
from repro.core.synthesis import TopologySynthesizer
from repro.physical.floorplan import Block, Floorplan
from repro.physical.technology import TechNode, TechnologyLibrary
from repro.topology.graph import Route, RoutingTable, Topology
from repro.three_d.topology3d import VERTICAL_HOP_MM
from repro.three_d.tsv import (
    TsvTechnology,
    VerticalLinkDesign,
    optimize_serialization,
    stack_yield,
)


@dataclass
class Stack3dResult:
    """A synthesized 3D design plus its TSV accounting."""

    design: DesignPoint
    layer_of: Dict[str, int]
    vertical_link_design: VerticalLinkDesign
    num_vertical_links: int
    tsv_area_mm2: float
    stack_yield: float


class Stack3dSynthesizer:
    """Layer-by-layer custom synthesis with serialized vertical spine.

    Each layer's cores are clustered onto per-layer switches by the 2D
    engine; one switch per layer is the *pillar* switch carrying the
    serialized vertical link to the next layer, and inter-layer flows
    are routed through the pillar spine (a tree: provably deadlock-free
    together with the per-layer custom routes, and verified by the CDG
    check in the tests).
    """

    def __init__(
        self,
        spec: CommunicationSpec,
        layer_of: Dict[str, int],
        tech: Optional[TechnologyLibrary] = None,
        tsv_tech: Optional[TsvTechnology] = None,
    ):
        for core in spec.core_names:
            if core not in layer_of:
                raise ValueError(f"core {core!r} has no layer assignment")
        self.spec = spec
        self.layer_of = dict(layer_of)
        self.tech = tech or TechnologyLibrary.for_node(TechNode.NM_65)
        self.tsv_tech = tsv_tech or TsvTechnology()
        self.evaluator = DesignEvaluator(self.tech)
        self.layers = sorted(set(layer_of.values()))
        if self.layers != list(range(len(self.layers))):
            raise ValueError("layers must be contiguous integers from 0")

    # ------------------------------------------------------------------
    def synthesize(
        self,
        switches_per_layer: int = 2,
        frequency_hz: float = 600e6,
        flit_width: int = 32,
        required_vertical_bandwidth_fraction: float = 0.5,
    ) -> Stack3dResult:
        """Build the stacked design at one operating point."""
        vlink = optimize_serialization(
            flit_width, required_vertical_bandwidth_fraction, self.tsv_tech
        )

        per_layer_results = []
        for z in self.layers:
            sub_spec, __ = self._layer_spec(z)
            synth = TopologySynthesizer(sub_spec, self.tech)
            per_layer_results.append(
                synth.synthesize(
                    min(switches_per_layer, len(sub_spec.core_names)),
                    frequency_hz=frequency_hz,
                    flit_width=flit_width,
                )
            )

        topo, table, floorplan, pillars = self._assemble(
            per_layer_results, vlink, frequency_hz, flit_width
        )
        design = self.evaluator.evaluate(
            name=f"{self.spec.name}-3d-{len(self.layers)}layers",
            spec=self.spec,
            topology=topo,
            routing_table=table,
            frequency_hz=frequency_hz,
            flit_width=flit_width,
            floorplan=floorplan,
        )
        num_vertical = len(self.layers) - 1
        links = [vlink] * num_vertical
        return Stack3dResult(
            design=design,
            layer_of=dict(self.layer_of),
            vertical_link_design=vlink,
            num_vertical_links=num_vertical,
            tsv_area_mm2=sum(l.area_mm2 for l in links) * 2,  # both directions
            stack_yield=stack_yield(links),
        )

    # ------------------------------------------------------------------
    def _layer_spec(self, z: int) -> Tuple[CommunicationSpec, List[FlowSpec]]:
        """The intra-layer sub-spec, plus the flows that leave the layer."""
        cores = [c for c in self.spec.core_names if self.layer_of[c] == z]
        intra = [
            f
            for f in self.spec.flows
            if self.layer_of[f.source] == z and self.layer_of[f.destination] == z
        ]
        inter = [
            f
            for f in self.spec.flows
            if (self.layer_of[f.source] == z) != (self.layer_of[f.destination] == z)
        ]
        if not intra:
            # The 2D engine needs at least one flow; add a placeholder
            # between the first two cores at negligible bandwidth.
            if len(cores) >= 2:
                intra = [FlowSpec(cores[0], cores[1], 0.001)]
        sub = CommunicationSpec(
            cores=[self.spec.cores[c] for c in cores],
            flows=intra,
            name=f"{self.spec.name}-layer{z}",
        )
        return sub, inter

    def _assemble(
        self,
        per_layer_results,
        vlink: VerticalLinkDesign,
        frequency_hz: float,
        flit_width: int,
    ):
        """Merge layer designs and wire the pillar spine."""
        topo = Topology(f"{self.spec.name}-3d", flit_width=flit_width)
        floorplan = Floorplan()
        pillars: List[str] = []
        rename: Dict[Tuple[int, str], str] = {}

        for z, result in enumerate(per_layer_results):
            lt = result.design.topology
            for sw in lt.switches:
                new = f"L{z}_{sw}"
                rename[(z, sw)] = new
                topo.add_switch(new, layer=z)
            for core in lt.cores:
                rename[(z, core)] = core
                topo.add_core(core, layer=z)
            for src, dst in lt.links:
                a, b = rename[(z, src)], rename[(z, dst)]
                if not topo.has_link(a, b):
                    attrs = lt.link_attrs(src, dst)
                    topo.add_link(
                        a, b,
                        length_mm=attrs.length_mm,
                        pipeline_stages=attrs.pipeline_stages,
                    )
            pillars.append(f"L{z}_sw0")
            lfp = result.design.floorplan
            for block in lfp:
                floorplan.add(
                    Block(
                        f"L{z}_{block.name}" if (z, block.name) in rename and
                        rename[(z, block.name)].startswith("L") else block.name,
                        block.width_mm,
                        block.height_mm,
                        block.x_mm,
                        block.y_mm,
                    )
                )

        for lower, upper in zip(pillars, pillars[1:]):
            topo.add_link(
                lower,
                upper,
                length_mm=VERTICAL_HOP_MM,
                pipeline_stages=vlink.extra_latency_cycles,
            )

        # Routing: intra-layer routes from the layer tables; inter-layer
        # flows go source -> its switch ... pillar spine ... dest switch.
        table = RoutingTable(topo)
        layer_tables = [r.design.routing_table for r in per_layer_results]
        for f in self.spec.flows:
            key = (f.source, f.destination)
            if table.has_route(*key):
                continue
            zs, zd = self.layer_of[f.source], self.layer_of[f.destination]
            if zs == zd:
                route = layer_tables[zs].route(*key)
                path = [
                    rename[(zs, n)] if (zs, n) in rename else n
                    for n in route.path
                ]
                table.set_route(Route(tuple(path)))
            else:
                path = self._inter_layer_path(
                    topo, f, zs, zd, per_layer_results, rename, pillars
                )
                table.set_route(Route(tuple(path)))
        return topo, table, floorplan, pillars

    def _inter_layer_path(
        self, topo, f, zs, zd, per_layer_results, rename, pillars
    ) -> List[str]:
        src_map = per_layer_results[zs].mapping
        dst_map = per_layer_results[zd].mapping
        src_sw = rename[(zs, f"sw{src_map.switch_of(f.source)}")]
        dst_sw = rename[(zd, f"sw{dst_map.switch_of(f.destination)}")]
        path = [f.source, src_sw]
        # Bridge the source switch to the layer's pillar: the 2D engine
        # only opened traffic-justified intra-layer links, so the pillar
        # feeder may need to be created here.
        if src_sw != pillars[zs]:
            if not topo.has_link(src_sw, pillars[zs]):
                topo.add_link(src_sw, pillars[zs], length_mm=1.0)
            path.append(pillars[zs])
        step = 1 if zd > zs else -1
        for z in range(zs + step, zd + step, step):
            path.append(pillars[z])
        if dst_sw != pillars[zd]:
            if not topo.has_link(pillars[zd], dst_sw):
                topo.add_link(pillars[zd], dst_sw, length_mm=1.0)
            path.append(dst_sw)
        path.append(f.destination)
        return path
