"""3D topologies: stacked meshes with TSV vertical links.

Fig. 3 shows "a chip where iNoCs technology has successfully met the
constraints of 3D design".  The structural win of stacking: a vertical
hop crosses tens of micrometers of silicon instead of millimeters of
metal, so the network diameter (in wire-millimeters) collapses.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.topology.graph import NodeKind, Route, RoutingTable, Topology
from repro.three_d.tsv import VerticalLinkDesign

# Physical length of one vertical hop (die thickness after thinning), mm.
VERTICAL_HOP_MM = 0.05


def switch_name(x: int, y: int, z: int) -> str:
    return f"s_{x}_{y}_{z}"


def core_name(x: int, y: int, z: int) -> str:
    return f"c_{x}_{y}_{z}"


def mesh3d(
    width: int,
    height: int,
    layers: int,
    flit_width: int = 32,
    tile_pitch_mm: float = 1.5,
    vertical_link: Optional[VerticalLinkDesign] = None,
    name: Optional[str] = None,
) -> Topology:
    """Build a ``width`` x ``height`` x ``layers`` stacked mesh.

    Vertical links carry the serialization design's extra pipeline
    latency; their physical length is :data:`VERTICAL_HOP_MM`.
    """
    if width < 1 or height < 1 or layers < 1:
        raise ValueError("dimensions must be >= 1")
    if width * height * layers < 2:
        raise ValueError("need at least 2 tiles")
    vertical_stages = vertical_link.extra_latency_cycles if vertical_link else 0
    topo = Topology(name or f"mesh3d_{width}x{height}x{layers}", flit_width=flit_width)
    for z in range(layers):
        for y in range(height):
            for x in range(width):
                topo.add_switch(switch_name(x, y, z), x=x, y=y, z=z)
                topo.add_core(core_name(x, y, z), x=x, y=y, z=z)
                topo.add_link(
                    core_name(x, y, z),
                    switch_name(x, y, z),
                    length_mm=tile_pitch_mm / 4,
                )
    for z in range(layers):
        for y in range(height):
            for x in range(width):
                if x + 1 < width:
                    topo.add_link(
                        switch_name(x, y, z),
                        switch_name(x + 1, y, z),
                        length_mm=tile_pitch_mm,
                    )
                if y + 1 < height:
                    topo.add_link(
                        switch_name(x, y, z),
                        switch_name(x, y + 1, z),
                        length_mm=tile_pitch_mm,
                    )
                if z + 1 < layers:
                    topo.add_link(
                        switch_name(x, y, z),
                        switch_name(x, y, z + 1),
                        length_mm=VERTICAL_HOP_MM,
                        pipeline_stages=vertical_stages,
                    )
    return topo


def xyz_routing(topo: Topology) -> RoutingTable:
    """Dimension-ordered X, then Y, then Z (deadlock-free on 3D meshes)."""
    coords = {}
    for sw in topo.switches:
        attrs = topo.node_attrs(sw)
        coords[sw] = (attrs["x"], attrs["y"], attrs["z"])

    table = RoutingTable(topo)
    cores = topo.cores
    for src in cores:
        a = topo.node_attrs(src)
        sx, sy, sz = a["x"], a["y"], a["z"]
        for dst in cores:
            if dst == src:
                continue
            b = topo.node_attrs(dst)
            dx, dy, dz = b["x"], b["y"], b["z"]
            path = [src]
            x, y, z = sx, sy, sz
            path.append(switch_name(x, y, z))
            while x != dx:
                x += 1 if dx > x else -1
                path.append(switch_name(x, y, z))
            while y != dy:
                y += 1 if dy > y else -1
                path.append(switch_name(x, y, z))
            while z != dz:
                z += 1 if dz > z else -1
                path.append(switch_name(x, y, z))
            path.append(dst)
            table.set_route(Route(tuple(path)))
    return table


def routes_2d_only(topo: Topology, table: RoutingTable) -> RoutingTable:
    """Filter a routing table to intra-layer routes only.

    "The flexibility of NoC routing tables easily enabl[es] either
    2D-only operation (in testing mode) or 3D-capable communication" —
    this is the 2D test mode: each layer is operated standalone.
    """
    out = RoutingTable(topo)
    for route in table:
        zs = {
            topo.node_attrs(n)["z"]
            for n in route.path
            if "z" in topo.node_attrs(n)
        }
        if len(zs) == 1:
            out.set_route(route)
    return out


def vertical_links(topo: Topology) -> List[Tuple[str, str]]:
    """All inter-layer switch links (both directions)."""
    out = []
    for src, dst in topo.links:
        if (
            topo.kind(src) is NodeKind.SWITCH
            and topo.kind(dst) is NodeKind.SWITCH
            and topo.node_attrs(src).get("z") != topo.node_attrs(dst).get("z")
        ):
            out.append((src, dst))
    return out


def total_wire_mm(topo: Topology, table: RoutingTable) -> float:
    """Route-weighted wire length: the 3D-vs-2D figure of merit."""
    total = 0.0
    for route in table:
        for src, dst in route.links():
            total += topo.link_attrs(src, dst).length_mm
    return total
