"""3D-IC extensions: TSVs, stacked topologies, 3D synthesis, link test."""

from repro.three_d.tsv import (
    TsvTechnology,
    VerticalLinkDesign,
    design_vertical_link,
    optimize_serialization,
    stack_yield,
)
from repro.three_d.topology3d import (
    VERTICAL_HOP_MM,
    mesh3d,
    routes_2d_only,
    total_wire_mm,
    vertical_links,
    xyz_routing,
)
from repro.three_d.link_test import (
    LinkTestReport,
    reroute_around_failures,
    run_link_test,
)
from repro.three_d.synthesis3d import Stack3dResult, Stack3dSynthesizer

__all__ = [
    "TsvTechnology",
    "VerticalLinkDesign",
    "design_vertical_link",
    "optimize_serialization",
    "stack_yield",
    "VERTICAL_HOP_MM",
    "mesh3d",
    "routes_2d_only",
    "total_wire_mm",
    "vertical_links",
    "xyz_routing",
    "LinkTestReport",
    "reroute_around_failures",
    "run_link_test",
    "Stack3dResult",
    "Stack3dSynthesizer",
]
