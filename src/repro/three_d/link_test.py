"""Built-in vertical-link test and routing reconfiguration.

Section 4.4: "Verification has been automated by leveraging built-in
link testing facilities ... 3D NoCs providing a modular and flexible
interconnect means that can also obviate for vertical connection
failures" — the routing tables are recomputed around failed TSV links,
keeping the stack operational.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.topology.graph import NodeKind, Route, RoutingTable, Topology
from repro.three_d.topology3d import vertical_links


@dataclass
class LinkTestReport:
    """Outcome of the built-in self test over the vertical links."""

    tested: List[Tuple[str, str]]
    failed: List[Tuple[str, str]]

    @property
    def all_pass(self) -> bool:
        return not self.failed

    @property
    def yield_observed(self) -> float:
        if not self.tested:
            return 1.0
        return 1.0 - len(self.failed) / len(self.tested)


def run_link_test(
    topo: Topology,
    fail_probability: float = 0.0,
    seed: int = 1,
    forced_failures: Optional[Iterable[Tuple[str, str]]] = None,
) -> LinkTestReport:
    """Exercise every vertical link; failures are injected.

    ``fail_probability`` models TSV defects discovered at test time;
    ``forced_failures`` pins specific links as broken (fault-injection
    tests).  Both directions of a broken via pair fail together.
    """
    if not 0.0 <= fail_probability <= 1.0:
        raise ValueError("fail probability must be in [0, 1]")
    rng = random.Random(seed)
    verticals = vertical_links(topo)
    forced = set(forced_failures or ())
    failed: Set[Tuple[str, str]] = set()
    seen_pairs = set()
    for src, dst in verticals:
        pair = tuple(sorted((src, dst)))
        if pair in seen_pairs:
            continue
        seen_pairs.add(pair)
        broken = (src, dst) in forced or (dst, src) in forced
        if not broken and rng.random() < fail_probability:
            broken = True
        if broken:
            failed.add((src, dst))
            failed.add((dst, src))
    return LinkTestReport(
        tested=sorted(verticals),
        failed=sorted(f for f in failed if f in set(verticals)),
    )


def reroute_around_failures(
    topo: Topology,
    failed_links: Iterable[Tuple[str, str]],
) -> RoutingTable:
    """Recompute *deadlock-free* routes avoiding failed links.

    The surviving fabric is re-routed with up*/down* (valid on any
    connected topology, so the reconfigured table keeps the synthesis
    deadlock guarantee).  Raises ``RuntimeError`` if any core pair
    becomes unreachable — the stack cannot be salvaged by routing alone.
    """
    from repro.topology.routing import up_down_routing

    dead = set(failed_links)
    survivor = Topology(f"{topo.name}-degraded", flit_width=topo.flit_width)
    for sw in topo.switches:
        survivor.add_switch(sw, **{
            k: v for k, v in topo.node_attrs(sw).items() if k != "kind"
        })
    for core in topo.cores:
        survivor.add_core(core, **{
            k: v for k, v in topo.node_attrs(core).items() if k != "kind"
        })
    for src, dst in topo.links:
        if (src, dst) in dead:
            continue
        attrs = topo.link_attrs(src, dst)
        survivor.add_link(
            src, dst,
            length_mm=attrs.length_mm,
            pipeline_stages=attrs.pipeline_stages,
            width_bits=attrs.width_bits,
            bidirectional=False,
        )
    if not survivor.is_connected():
        raise RuntimeError(
            "link failures disconnect the stack; reconfiguration alone "
            "cannot recover"
        )
    degraded = up_down_routing(survivor)
    # Re-express the routes on the original topology object.
    table = RoutingTable(topo)
    for route in degraded:
        table.set_route(Route(route.path))
    return table
