"""Physical-implementation models.

Technology-calibrated analytical models standing in for the 65 nm
place-and-route studies the paper reports (Fig. 2, Section 4, [43]):
switch area and maximum frequency versus radix, wire delay and power with
repeaters and pipelining, routability / row-utilization bands, and a
block-level floorplanner with incremental NoC-component insertion.
"""

from repro.physical.technology import TechnologyLibrary, TechNode
from repro.physical.switch_model import SwitchPhysicalModel, SwitchEstimate
from repro.physical.wire import WireModel, WireEstimate, required_pipeline_stages
from repro.physical.power import PowerModel, ComponentPower, NocPowerReport
from repro.physical.routability import (
    RoutabilityModel,
    RoutabilityVerdict,
    RoutabilityClass,
)
from repro.physical.floorplan import Block, Floorplan, IncrementalFloorplanner

__all__ = [
    "TechnologyLibrary",
    "TechNode",
    "SwitchPhysicalModel",
    "SwitchEstimate",
    "WireModel",
    "WireEstimate",
    "required_pipeline_stages",
    "PowerModel",
    "ComponentPower",
    "NocPowerReport",
    "RoutabilityModel",
    "RoutabilityVerdict",
    "RoutabilityClass",
    "Block",
    "Floorplan",
    "IncrementalFloorplanner",
]
