"""Power models for NoC components.

Activity-based dynamic power plus leakage, in the style the paper's tool
flow requires ("the NoC components are characterized with the target
technology library to compute the area, power and maximum operating
frequency of the routers, NIs and links", Section 6).

Energy accounting is per *flit event*:

* a flit traversing a switch pays buffer write/read plus crossbar and
  allocator switching, proportional to the switch's gate count share;
* a flit traversing a link pays repeated-wire switching energy
  proportional to length and width;
* NIs pay (de)packetization energy per flit.

Leakage is proportional to gate-equivalents and always on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from repro.physical.switch_model import SwitchEstimate, SwitchPhysicalModel
from repro.physical.technology import TechnologyLibrary
from repro.physical.wire import WireModel

# Fraction of a switch's gate-equivalents that toggle when one flit
# traverses it (buffer write+read, crossbar, allocator).  Calibrated so a
# 65 nm 5x5 32-bit switch costs ~15-20 pJ/flit, matching Orion-class
# published numbers and keeping the switch-vs-wire energy ratio that the
# SunFloor comparisons [11] rest on.
_SWITCH_ACTIVITY_SHARE = 0.35
# FIFO energy per bit per access (write + read = two accesses per flit),
# fJ.  Buffering is roughly half a wormhole router's per-flit energy in
# published 65 nm characterizations; together with the logic share above
# this puts a 5x5 32-bit switch at ~10-15 pJ/flit.
_BUFFER_ACCESS_FJ_PER_BIT = 75.0
# Gate-equivalents toggled in an NI per flit (packetization datapath).
_NI_GATES_PER_FLIT_PER_BIT = 1.6
# NI static gate count (LUTs, FSMs) per bit of flit width.
_NI_GATES_PER_BIT = 110.0


@dataclass(frozen=True)
class ComponentPower:
    """Power of one component at a given activity level."""

    name: str
    dynamic_mw: float
    leakage_mw: float

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.leakage_mw


@dataclass
class NocPowerReport:
    """Aggregated NoC power breakdown."""

    components: Dict[str, ComponentPower] = field(default_factory=dict)

    def add(self, component: ComponentPower) -> None:
        if component.name in self.components:
            raise ValueError(f"duplicate component {component.name!r}")
        self.components[component.name] = component

    @property
    def dynamic_mw(self) -> float:
        return sum(c.dynamic_mw for c in self.components.values())

    @property
    def leakage_mw(self) -> float:
        return sum(c.leakage_mw for c in self.components.values())

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.leakage_mw

    def by_kind(self) -> Dict[str, float]:
        """Total power grouped by the component-name prefix (switch/ni/link)."""
        groups: Dict[str, float] = {}
        for name, comp in self.components.items():
            kind = name.split(":", 1)[0]
            groups[kind] = groups.get(kind, 0.0) + comp.total_mw
        return groups


class PowerModel:
    """Energy/power characterization over a technology library."""

    def __init__(self, tech: TechnologyLibrary):
        self.tech = tech
        self.switch_model = SwitchPhysicalModel(tech)
        self.wire_model = WireModel(tech)

    # ------------------------------------------------------------------
    # Per-event energies
    # ------------------------------------------------------------------
    def switch_energy_pj_per_flit(self, estimate: SwitchEstimate) -> float:
        """Dynamic energy of one flit traversing a switch, pJ.

        Logic switching (crossbar + allocator share) plus one FIFO write
        and one read of the flit.
        """
        toggled = estimate.gate_equivalents * _SWITCH_ACTIVITY_SHARE
        logic = toggled * self.tech.energy_per_gate_fj * 1e-3
        buffers = 2 * estimate.flit_width * _BUFFER_ACCESS_FJ_PER_BIT * 1e-3
        return logic + buffers

    def ni_energy_pj_per_flit(self, flit_width: int) -> float:
        """Dynamic energy of one flit through an NI (pack or unpack), pJ."""
        if flit_width < 1:
            raise ValueError("flit width must be >= 1")
        return flit_width * _NI_GATES_PER_FLIT_PER_BIT * self.tech.energy_per_gate_fj * 1e-3

    def link_energy_pj_per_flit(self, length_mm: float, flit_width: int) -> float:
        """Dynamic energy of one flit over a link of ``length_mm``, pJ."""
        return self.tech.wire_energy_pj_per_mm(flit_width) * length_mm

    # ------------------------------------------------------------------
    # Leakage
    # ------------------------------------------------------------------
    def switch_leakage_mw(self, estimate: SwitchEstimate) -> float:
        return estimate.gate_equivalents * self.tech.leakage_nw_per_gate * 1e-6

    def ni_leakage_mw(self, flit_width: int) -> float:
        return flit_width * _NI_GATES_PER_BIT * self.tech.leakage_nw_per_gate * 1e-6

    # ------------------------------------------------------------------
    # Component power at an activity level
    # ------------------------------------------------------------------
    def switch_power(
        self, name: str, estimate: SwitchEstimate, flits_per_second: float
    ) -> ComponentPower:
        """Switch power at a given flit rate."""
        if flits_per_second < 0:
            raise ValueError("flit rate must be non-negative")
        dynamic = self.switch_energy_pj_per_flit(estimate) * flits_per_second * 1e-9
        return ComponentPower(
            name=f"switch:{name}",
            dynamic_mw=dynamic,
            leakage_mw=self.switch_leakage_mw(estimate),
        )

    def ni_power(self, name: str, flit_width: int, flits_per_second: float) -> ComponentPower:
        if flits_per_second < 0:
            raise ValueError("flit rate must be non-negative")
        dynamic = self.ni_energy_pj_per_flit(flit_width) * flits_per_second * 1e-9
        return ComponentPower(
            name=f"ni:{name}",
            dynamic_mw=dynamic,
            leakage_mw=self.ni_leakage_mw(flit_width),
        )

    def link_power(
        self, name: str, length_mm: float, flit_width: int, flits_per_second: float
    ) -> ComponentPower:
        if flits_per_second < 0:
            raise ValueError("flit rate must be non-negative")
        dynamic = self.link_energy_pj_per_flit(length_mm, flit_width) * flits_per_second * 1e-9
        return ComponentPower(name=f"link:{name}", dynamic_mw=dynamic, leakage_mw=0.0)

    # ------------------------------------------------------------------
    def aggregate(self, components: Iterable[ComponentPower]) -> NocPowerReport:
        report = NocPowerReport()
        for comp in components:
            report.add(comp)
        return report
