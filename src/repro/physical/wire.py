"""Wire and link physical models: delay, pipelining, serialization.

Implements the "structured wiring" story of Section 4.1:

* NoC links are point-to-point, so their length is known and bounded by
  topology synthesis; a link longer than one clock cycle of wire is
  **pipelined** by inserting relay stations (Section 3: "Links can
  represent more than just physical wires as they can provide pipelining
  in order to achieve the required timing").
* Packetization enables **serialization**: a transaction that a bus
  carries on 100-200 parallel wires is split over multiple cycles in
  flits, so the designer chooses the wire count / latency trade-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.physical.technology import TechnologyLibrary

# Control wires accompanying a flit link: flow control (ack/stall or
# credits), head/tail framing, valid.
CONTROL_WIRES = 6

# A classic bus reference for the serialization comparison (Section 4.1:
# "a typical on-chip bus requires around 100 to 200 wires").
BUS_REFERENCE_WIRES = {
    "32-bit bus": 32 + 32 + 32 + 12,   # write data + read data + address + control
    "64-bit bus": 64 + 64 + 32 + 14,
}


def required_pipeline_stages(
    length_mm: float,
    frequency_hz: float,
    tech: TechnologyLibrary,
    timing_fraction: float = 0.8,
) -> int:
    """Number of pipeline stages a link of ``length_mm`` needs.

    0 means the link is traversed combinationally within the cycle;
    k >= 1 means k relay flops are inserted, adding k cycles of latency.
    """
    if length_mm < 0:
        raise ValueError("length must be non-negative")
    if length_mm == 0:
        return 0
    max_mm = tech.max_wire_mm_at(frequency_hz, timing_fraction)
    return max(0, math.ceil(length_mm / max_mm) - 1)


@dataclass(frozen=True)
class WireEstimate:
    """Characterization of one link at a given length/width/frequency."""

    length_mm: float
    flit_width: int
    frequency_hz: float
    pipeline_stages: int
    wire_count: int
    delay_cycles: int
    energy_pj_per_flit: float
    bandwidth_bits_per_s: float


class WireModel:
    """Link characterization over a technology library."""

    def __init__(self, tech: TechnologyLibrary):
        self.tech = tech

    def estimate(
        self,
        length_mm: float,
        flit_width: int,
        frequency_hz: float,
        timing_fraction: float = 0.8,
    ) -> WireEstimate:
        """Characterize one unidirectional link."""
        if flit_width < 1:
            raise ValueError("flit width must be >= 1")
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        stages = required_pipeline_stages(length_mm, frequency_hz, self.tech, timing_fraction)
        energy = self.tech.wire_energy_pj_per_mm(flit_width) * length_mm
        # Relay flops add clocked energy: one gate-equivalent per bit per stage.
        energy += stages * flit_width * self.tech.energy_per_gate_fj * 1e-3
        return WireEstimate(
            length_mm=length_mm,
            flit_width=flit_width,
            frequency_hz=frequency_hz,
            pipeline_stages=stages,
            wire_count=flit_width + CONTROL_WIRES,
            delay_cycles=1 + stages,
            energy_pj_per_flit=energy,
            bandwidth_bits_per_s=flit_width * frequency_hz,
        )

    # ------------------------------------------------------------------
    def serialization_tradeoff(
        self,
        payload_bits: int,
        flit_widths: "list[int]",
        length_mm: float,
        frequency_hz: float,
    ) -> "list[dict]":
        """Sweep flit width for a fixed payload (SER experiment).

        For each candidate width, report wires deployed, cycles to
        transfer the payload, and energy — the designer-facing
        performance/wiring trade-off of Section 4.1.
        """
        if payload_bits < 1:
            raise ValueError("payload must be >= 1 bit")
        rows = []
        for width in flit_widths:
            est = self.estimate(length_mm, width, frequency_hz)
            flits = math.ceil(payload_bits / width)
            rows.append(
                {
                    "flit_width": width,
                    "wire_count": est.wire_count,
                    "flits_per_payload": flits,
                    "serialization_cycles": flits,
                    "link_traversal_cycles": est.delay_cycles,
                    "energy_pj_per_payload": est.energy_pj_per_flit * flits,
                    "bandwidth_bits_per_s": est.bandwidth_bits_per_s,
                }
            )
        return rows
