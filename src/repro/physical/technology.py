"""Technology library: per-node constants used by all physical models.

The paper's tool flow (Section 6) characterizes NoC components "with the
target technology library to compute the area, power and maximum operating
frequency of the routers, NIs and links".  We reproduce that
characterization step with analytical models whose constants are calibrated
against published numbers:

* the 65 nm xpipes implementation study [43] (Pullini et al., "Bringing
  NoCs to 65 nm", IEEE Micro 2007): ~1 GHz switches, 32-bit flits,
  5x5 switch of the order of 0.05 mm^2;
* ITRS-class wire parameters for the 130/90/65/45 nm nodes.

Constants here are *calibrated, not fabricated*: each captures an
order-of-magnitude published value, and every model using them reproduces
trends (scaling shape, crossover points), never absolute silicon numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class TechNode(Enum):
    """Supported technology nodes (feature size in nm)."""

    NM_130 = 130
    NM_90 = 90
    NM_65 = 65
    NM_45 = 45

    @property
    def nanometers(self) -> int:
        return self.value


@dataclass(frozen=True)
class TechnologyLibrary:
    """Per-node physical constants.

    Attributes
    ----------
    node:
        The technology node.
    gate_delay_ps:
        Delay of a fanout-of-4 inverter, picoseconds.  Scales ~linearly
        with feature size (gate delay improves with scaling; wires do not
        -- the core argument of the paper's introduction).
    wire_delay_ps_per_mm:
        Delay of an optimally-repeated global wire, ps/mm.  Roughly flat
        across nodes (slightly worsening), reproducing "gate delays
        decrease while global wire delays do not".
    wire_cap_ff_per_mm:
        Repeated-wire switching capacitance, fF/mm.
    vdd:
        Supply voltage, volts.
    cell_area_um2:
        Area of a reference NAND2-equivalent cell, um^2 (used as the unit
        of logic area).
    sram_bit_area_um2:
        Area of one bit of register-file/FIFO storage, um^2.
    leakage_nw_per_gate:
        Leakage per gate equivalent, nW.
    energy_per_gate_fj:
        Dynamic switching energy per gate equivalent per activation, fJ.
    routing_tracks_per_um:
        Effective routing-track density available to switch-internal
        nets, tracks per um of die width summed across usable metal
        layers and derated for blockages (used by the routability model;
        calibrated at 65 nm so the Fig. 2 utilization bands land on the
        published radix boundaries).
    """

    node: TechNode
    gate_delay_ps: float
    wire_delay_ps_per_mm: float
    wire_cap_ff_per_mm: float
    vdd: float
    cell_area_um2: float
    sram_bit_area_um2: float
    leakage_nw_per_gate: float
    energy_per_gate_fj: float
    routing_tracks_per_um: float = field(default=6.66)

    @staticmethod
    def for_node(node: TechNode) -> "TechnologyLibrary":
        """Return the calibrated library for ``node``."""
        try:
            return _LIBRARIES[node]
        except KeyError:  # pragma: no cover - all enum members present
            raise ValueError(f"no technology library for {node!r}")

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    def max_wire_mm_at(self, frequency_hz: float, timing_fraction: float = 0.8) -> float:
        """Longest single-cycle wire at ``frequency_hz``.

        ``timing_fraction`` is the share of the cycle available to the
        wire after flop setup/clock-to-q overhead.  This is the quantity
        the paper's "structured wiring" section exploits: NoC links longer
        than this must be pipelined (link pipelining, Section 3/4.1).
        """
        if frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        cycle_ps = 1e12 / frequency_hz
        return timing_fraction * cycle_ps / self.wire_delay_ps_per_mm

    def wire_energy_pj_per_mm(self, bits: int = 1) -> float:
        """Dynamic energy to switch ``bits`` parallel wires over 1 mm, pJ.

        Uses E = C * Vdd^2 with an activity factor of 0.5 folded into the
        capacitance calibration.
        """
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return self.wire_cap_ff_per_mm * 1e-3 * self.vdd**2 * 0.5 * bits


_LIBRARIES = {
    TechNode.NM_130: TechnologyLibrary(
        node=TechNode.NM_130,
        gate_delay_ps=50.0,
        wire_delay_ps_per_mm=95.0,
        wire_cap_ff_per_mm=250.0,
        vdd=1.2,
        cell_area_um2=5.1,
        sram_bit_area_um2=2.4,
        leakage_nw_per_gate=0.5,
        energy_per_gate_fj=9.0,
        routing_tracks_per_um=3.3,
    ),
    TechNode.NM_90: TechnologyLibrary(
        node=TechNode.NM_90,
        gate_delay_ps=35.0,
        wire_delay_ps_per_mm=100.0,
        wire_cap_ff_per_mm=230.0,
        vdd=1.1,
        cell_area_um2=2.5,
        sram_bit_area_um2=1.2,
        leakage_nw_per_gate=1.5,
        energy_per_gate_fj=5.0,
        routing_tracks_per_um=4.8,
    ),
    TechNode.NM_65: TechnologyLibrary(
        node=TechNode.NM_65,
        gate_delay_ps=25.0,
        wire_delay_ps_per_mm=105.0,
        wire_cap_ff_per_mm=210.0,
        vdd=1.0,
        cell_area_um2=1.3,
        sram_bit_area_um2=0.62,
        leakage_nw_per_gate=3.0,
        energy_per_gate_fj=2.6,
        routing_tracks_per_um=6.66,
    ),
    TechNode.NM_45: TechnologyLibrary(
        node=TechNode.NM_45,
        gate_delay_ps=17.0,
        wire_delay_ps_per_mm=115.0,
        wire_cap_ff_per_mm=195.0,
        vdd=0.9,
        cell_area_um2=0.65,
        sram_bit_area_um2=0.30,
        leakage_nw_per_gate=6.0,
        energy_per_gate_fj=1.4,
        routing_tracks_per_um=9.6,
    ),
}
