"""Switch area / frequency characterization versus radix.

Reproduces the model behind Fig. 2 of the paper ("Study on 65nm, 32-bit
switch scalability", based on [43]): a wormhole switch of radix NxN with
flit width W is characterized for

* **cell area** — buffer storage (linear in N), crossbar (quadratic in
  N*W), and allocator/arbiter logic (quadratic in N with a log factor);
* **maximum operating frequency** — limited by the allocator critical
  path (grows with log2 N) plus intra-switch wire delay (grows with the
  linear dimension of the switch, i.e. sqrt(area)).

Calibration anchors (65 nm, 32-bit, per [43]): a 5x5 switch is of the
order of 0.05 mm^2 and runs around 1 GHz; 10x10 switches remain efficient
("85% row utilization or more" in Fig. 2), while very large radices pay a
steep area and frequency cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.physical.technology import TechnologyLibrary, TechNode

# Gate-equivalents per component, calibrated at 65 nm / 32-bit.
_GATES_PER_BUFFER_BIT = 1.0          # flop + mux overhead folded into sram_bit area
_GATES_PER_XBAR_CROSSPOINT_BIT = 0.6  # mux tree share per crosspoint bit
_GATES_ALLOCATOR_PER_PORT_PAIR = 28.0  # request/grant matrix logic
_GATES_CONTROL_PER_PORT = 340.0       # FSMs, routing field handling

# Critical-path calibration: FO4 depths.
_FO4_BASE = 28.0         # flop-to-flop logic depth of a minimal 2x2 switch
_FO4_PER_LOG2_RADIX = 7.5  # arbitration tree depth growth


@dataclass(frozen=True)
class SwitchEstimate:
    """Physical characterization of one switch configuration."""

    radix_in: int
    radix_out: int
    flit_width: int
    buffer_depth: int
    area_mm2: float
    max_frequency_hz: float
    gate_equivalents: float

    @property
    def side_mm(self) -> float:
        """Linear dimension assuming a square layout."""
        return math.sqrt(self.area_mm2)


class SwitchPhysicalModel:
    """Analytical area/frequency model of a wormhole switch.

    Parameters
    ----------
    tech:
        Technology library providing cell/bit areas and gate delay.
    """

    def __init__(self, tech: TechnologyLibrary):
        self.tech = tech

    # ------------------------------------------------------------------
    def gate_equivalents(
        self,
        radix_in: int,
        radix_out: int,
        flit_width: int = 32,
        buffer_depth: int = 4,
        output_buffer_depth: int = 0,
    ) -> float:
        """Logic gate-equivalents (excluding FIFO storage bits)."""
        self._validate(radix_in, radix_out, flit_width, buffer_depth)
        crosspoints = radix_in * radix_out * flit_width
        allocator = radix_in * radix_out * _GATES_ALLOCATOR_PER_PORT_PAIR
        control = (radix_in + radix_out) * _GATES_CONTROL_PER_PORT
        return (
            crosspoints * _GATES_PER_XBAR_CROSSPOINT_BIT
            + allocator * max(1.0, math.log2(radix_out))
            + control
        )

    def estimate(
        self,
        radix_in: int,
        radix_out: int,
        flit_width: int = 32,
        buffer_depth: int = 4,
        output_buffer_depth: int = 0,
    ) -> SwitchEstimate:
        """Characterize one switch configuration.

        ``output_buffer_depth`` models the extra output FIFOs required by
        ACK/NACK flow control (Section 3 of the paper: "If ACK/NACK flow
        control is used then output buffers are required").
        """
        self._validate(radix_in, radix_out, flit_width, buffer_depth)
        if output_buffer_depth < 0:
            raise ValueError("output_buffer_depth must be >= 0")

        storage_bits = flit_width * (
            radix_in * buffer_depth + radix_out * output_buffer_depth
        )
        gates = self.gate_equivalents(radix_in, radix_out, flit_width, buffer_depth)
        area_um2 = (
            storage_bits * self.tech.sram_bit_area_um2 * _GATES_PER_BUFFER_BIT
            + gates * self.tech.cell_area_um2
        )
        # Placed area: utilization below 100% (routing overhead grows with
        # radix; the routability model refines this, here we take the
        # baseline 85% of Fig. 2's small-switch band).
        area_mm2 = area_um2 / 0.85 * 1e-6

        logic_ps = self.tech.gate_delay_ps * (
            _FO4_BASE + _FO4_PER_LOG2_RADIX * math.log2(max(radix_in, radix_out))
        )
        # Intra-switch wire: the critical net crosses roughly one switch side.
        wire_ps = self.tech.wire_delay_ps_per_mm * math.sqrt(area_mm2)
        max_frequency_hz = 1e12 / (logic_ps + wire_ps)

        return SwitchEstimate(
            radix_in=radix_in,
            radix_out=radix_out,
            flit_width=flit_width,
            buffer_depth=buffer_depth,
            area_mm2=area_mm2,
            max_frequency_hz=max_frequency_hz,
            gate_equivalents=gates + storage_bits,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _validate(radix_in: int, radix_out: int, flit_width: int, buffer_depth: int) -> None:
        if radix_in < 1 or radix_out < 1:
            raise ValueError("switch radix must be >= 1 on both sides")
        if flit_width < 1:
            raise ValueError("flit width must be >= 1")
        if buffer_depth < 1:
            raise ValueError("buffer depth must be >= 1 (wormhole needs storage)")


def default_switch_model(node: TechNode = TechNode.NM_65) -> SwitchPhysicalModel:
    """Convenience constructor used throughout the tool flow."""
    return SwitchPhysicalModel(TechnologyLibrary.for_node(node))
