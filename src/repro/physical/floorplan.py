"""Block-level floorplanning with incremental NoC-component insertion.

Reproduces the floorplan-aware synthesis loop of SunFloor [11][12] and the
iNoCs flow (Fig. 6):

* the designer supplies an *early floorplan of the SoC without the
  interconnect* (or just relative block positions);
* topology synthesis uses block positions to estimate wire lengths,
  delays and power **during** synthesis;
* once a topology is chosen, the NoC components (switches, NIs) are
  inserted at the best positions "while marginally perturbing the initial
  floorplan input" — incremental floorplanning.

The placer is deterministic: NoC components are placed at the weighted
centroid of the blocks they connect to, then legalized onto free sites
found by a spiral search, so the original block placement is never moved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass
class Block:
    """A placed rectangular block (core, switch or NI).

    Coordinates are the lower-left corner, in millimeters.
    """

    name: str
    width_mm: float
    height_mm: float
    x_mm: float = 0.0
    y_mm: float = 0.0
    fixed: bool = False

    def __post_init__(self) -> None:
        if self.width_mm <= 0 or self.height_mm <= 0:
            raise ValueError(f"block {self.name!r} must have positive dimensions")

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x_mm + self.width_mm / 2.0, self.y_mm + self.height_mm / 2.0)

    @property
    def area_mm2(self) -> float:
        return self.width_mm * self.height_mm

    def overlaps(self, other: "Block", margin: float = 0.0) -> bool:
        """Axis-aligned overlap test with an optional spacing margin."""
        return not (
            self.x_mm + self.width_mm + margin <= other.x_mm
            or other.x_mm + other.width_mm + margin <= self.x_mm
            or self.y_mm + self.height_mm + margin <= other.y_mm
            or other.y_mm + other.height_mm + margin <= self.y_mm
        )


def manhattan(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Manhattan distance between two points — the on-chip wire metric."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


class Floorplan:
    """A set of placed blocks plus distance queries.

    The floorplan is the physical substrate of the whole tool flow: wire
    lengths between any two blocks' centers feed the delay and power
    models during topology synthesis.
    """

    def __init__(self, blocks: Iterable[Block] = ()):
        self._blocks: Dict[str, Block] = {}
        for block in blocks:
            self.add(block)

    # ------------------------------------------------------------------
    def add(self, block: Block) -> None:
        if block.name in self._blocks:
            raise ValueError(f"duplicate block {block.name!r}")
        self._blocks[block.name] = block

    def __contains__(self, name: str) -> bool:
        return name in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self):
        return iter(self._blocks.values())

    def block(self, name: str) -> Block:
        try:
            return self._blocks[name]
        except KeyError:
            raise KeyError(f"no block named {name!r} in floorplan") from None

    @property
    def names(self) -> List[str]:
        return list(self._blocks)

    # ------------------------------------------------------------------
    def distance_mm(self, a: str, b: str) -> float:
        """Center-to-center Manhattan distance between two blocks."""
        return manhattan(self.block(a).center, self.block(b).center)

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """(xmin, ymin, xmax, ymax) of all blocks."""
        if not self._blocks:
            return (0.0, 0.0, 0.0, 0.0)
        xs0 = [b.x_mm for b in self._blocks.values()]
        ys0 = [b.y_mm for b in self._blocks.values()]
        xs1 = [b.x_mm + b.width_mm for b in self._blocks.values()]
        ys1 = [b.y_mm + b.height_mm for b in self._blocks.values()]
        return (min(xs0), min(ys0), max(xs1), max(ys1))

    @property
    def die_area_mm2(self) -> float:
        x0, y0, x1, y1 = self.bounding_box()
        return (x1 - x0) * (y1 - y0)

    def total_block_area_mm2(self) -> float:
        return sum(b.area_mm2 for b in self._blocks.values())

    def hpwl(self, nets: Sequence[Sequence[str]]) -> float:
        """Half-perimeter wirelength of a set of nets (block-name lists)."""
        total = 0.0
        for net in nets:
            if len(net) < 2:
                continue
            centers = [self.block(n).center for n in net]
            xs = [c[0] for c in centers]
            ys = [c[1] for c in centers]
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total

    def has_overlaps(self, margin: float = 0.0) -> bool:
        blocks = list(self._blocks.values())
        for i, a in enumerate(blocks):
            for b in blocks[i + 1:]:
                if a.overlaps(b, margin=margin):
                    return True
        return False

    def copy(self) -> "Floorplan":
        return Floorplan(
            Block(b.name, b.width_mm, b.height_mm, b.x_mm, b.y_mm, b.fixed)
            for b in self._blocks.values()
        )

    # ------------------------------------------------------------------
    @staticmethod
    def grid(
        names: Sequence[str],
        block_width_mm: float = 1.0,
        block_height_mm: float = 1.0,
        columns: Optional[int] = None,
        spacing_mm: float = 0.1,
    ) -> "Floorplan":
        """Regular grid placement — the default when no floorplan is given.

        Mirrors the tool flow's fallback: "Instead of a floorplan, a
        simpler metric can be used, such as the relative distance between
        the blocks".
        """
        if not names:
            raise ValueError("need at least one block")
        cols = columns or max(1, math.ceil(math.sqrt(len(names))))
        fp = Floorplan()
        for i, name in enumerate(names):
            row, col = divmod(i, cols)
            fp.add(
                Block(
                    name=name,
                    width_mm=block_width_mm,
                    height_mm=block_height_mm,
                    x_mm=col * (block_width_mm + spacing_mm),
                    y_mm=row * (block_height_mm + spacing_mm),
                )
            )
        return fp


@dataclass
class _Insertion:
    name: str
    width_mm: float
    height_mm: float
    attached_to: List[Tuple[str, float]]  # (block name, connection weight)


class IncrementalFloorplanner:
    """Insert NoC components into an existing floorplan.

    Original blocks are never moved ("marginally perturbing the initial
    floorplan input"); each new component is placed at the weighted
    centroid of its attached blocks, then legalized to the nearest
    non-overlapping site via a deterministic spiral search over a fine
    grid.
    """

    def __init__(self, floorplan: Floorplan, margin_mm: float = 0.02):
        self.base = floorplan
        self.margin_mm = margin_mm
        self._pending: List[_Insertion] = []

    def insert(
        self,
        name: str,
        width_mm: float,
        height_mm: float,
        attached_to: Sequence[Tuple[str, float]],
    ) -> None:
        """Queue a component for insertion.

        ``attached_to`` lists (existing block name, weight) pairs; the
        weight is typically the bandwidth on the connection, so hot links
        pull the component closer.
        """
        if not attached_to:
            raise ValueError(f"component {name!r} must attach to at least one block")
        for blk, weight in attached_to:
            if blk not in self.base:
                raise KeyError(f"component {name!r} attaches to unknown block {blk!r}")
            if weight < 0:
                raise ValueError("connection weights must be non-negative")
        self._pending.append(_Insertion(name, width_mm, height_mm, list(attached_to)))

    def place(self) -> Floorplan:
        """Place all queued components; returns the augmented floorplan."""
        result = self.base.copy()
        for item in self._pending:
            target = self._weighted_centroid(result, item)
            placed = self._legalize(result, item, target)
            result.add(placed)
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _weighted_centroid(fp: Floorplan, item: _Insertion) -> Tuple[float, float]:
        total_w = sum(w for _, w in item.attached_to)
        if total_w <= 0:
            # Unweighted average if all weights are zero.
            pts = [fp.block(n).center for n, _ in item.attached_to]
            return (
                sum(p[0] for p in pts) / len(pts),
                sum(p[1] for p in pts) / len(pts),
            )
        x = sum(fp.block(n).center[0] * w for n, w in item.attached_to) / total_w
        y = sum(fp.block(n).center[1] * w for n, w in item.attached_to) / total_w
        return (x, y)

    def _legalize(
        self, fp: Floorplan, item: _Insertion, target: Tuple[float, float]
    ) -> Block:
        """Spiral-search the nearest overlap-free site around ``target``."""
        x0, y0, x1, y1 = fp.bounding_box()
        # Allow placement slightly outside the current bounding box: the
        # die grows marginally rather than forcing overlaps.
        slack = max(item.width_mm, item.height_mm) * 4 + 1.0
        step = max(min(item.width_mm, item.height_mm) / 2.0, 0.05)

        def candidate_ok(cx: float, cy: float) -> Optional[Block]:
            block = Block(
                name=item.name,
                width_mm=item.width_mm,
                height_mm=item.height_mm,
                x_mm=cx - item.width_mm / 2.0,
                y_mm=cy - item.height_mm / 2.0,
            )
            for other in fp:
                if block.overlaps(other, margin=self.margin_mm):
                    return None
            return block

        best = candidate_ok(*target)
        if best is not None:
            return best
        # Expanding rings of candidate centers around the target.
        radius = step
        while radius < slack + max(x1 - x0, y1 - y0):
            steps = max(8, int(2 * math.pi * radius / step))
            candidates = []
            for k in range(steps):
                angle = 2 * math.pi * k / steps
                cx = target[0] + radius * math.cos(angle)
                cy = target[1] + radius * math.sin(angle)
                block = candidate_ok(cx, cy)
                if block is not None:
                    candidates.append((manhattan((cx, cy), target), k, block))
            if candidates:
                return min(candidates)[2]
            radius += step
        raise RuntimeError(f"could not legalize component {item.name!r}")
