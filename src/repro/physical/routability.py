"""Routability model: row-utilization bands and DRC feasibility vs radix.

Fig. 2 of the paper classifies 65 nm 32-bit switches by achievable
standard-cell row utilization:

* radix up to 10x10 — place&route closes at **85% row utilization or
  more**;
* 14x14 to 22x22 — utilization must be relaxed to **70% down to 50%**;
* 26x26 and above — **DRC violations to tackle manually even at 50%**.

Section 4.2 adds the bus-era context: crossbars with 100-200-wire ports
are constrained by commercial tools to ~8x8 or less, whereas 32-bit NoC
switches "of radix 10x10 can be efficiently designed".

The mechanism is wiring congestion.  Crossbar wiring demand grows
super-linearly with radix while routing-track supply grows only with the
placed area; relaxing row utilization spreads the same cells over more
area, buying supply — exactly the lever Fig. 2 describes.  We model:

* demand  = radix^1.5 * sqrt(W_ref * W) * net_length_factor * side
  (the 1.5 exponent and sqrt-width term capture bit-slicing and
  multi-layer assignment, which let routers amortize wide/large
  crossbars sublinearly — calibrated so the 32-bit bands land on the
  figure and the bus-width crossbar limit lands on ~8x8);
* supply  = track_density * side^2 * supply_efficiency.

With placed side = sqrt(cell_area / utilization), the achievable
utilization has the closed form  u* = (supply_coeff * sqrt(cell_area)
/ demand_coeff)^2, clamped to [0, 0.98].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.physical.switch_model import SwitchPhysicalModel
from repro.physical.technology import TechnologyLibrary

# Fraction of routing supply usable for switch-internal nets (the rest is
# consumed by power grid, clock, and cell-internal blockages).
_SUPPLY_EFFICIENCY = 0.62
# Average crosspoint net length as a fraction of the switch side.
_NET_LENGTH_FACTOR = 0.58
# Reference width at which the demand model is calibrated (Fig. 2 is 32-bit).
_W_REF = 32.0
# Utilization below which tools give up (Fig. 2: "even at 50%").
MIN_UTILIZATION = 0.50
# Band edge for "efficiently designed" switches.
EFFICIENT_UTILIZATION = 0.85
_MAX_UTILIZATION = 0.98


class RoutabilityClass(Enum):
    """The three feasibility bands of Fig. 2."""

    EFFICIENT = "efficient"        # >= 85% row utilization
    DEGRADED = "degraded"          # 50%..85% utilization
    DRC_INFEASIBLE = "infeasible"  # violations even at 50%


@dataclass(frozen=True)
class RoutabilityVerdict:
    """Outcome of the routability analysis for one switch."""

    radix: int
    port_width: int
    achievable_row_utilization: float
    congestion_ratio_at_min_util: float
    classification: RoutabilityClass

    @property
    def feasible(self) -> bool:
        return self.classification is not RoutabilityClass.DRC_INFEASIBLE


class RoutabilityModel:
    """Congestion-based routability classifier.

    Parameters
    ----------
    tech:
        Technology library (supplies routing track density).
    switch_model:
        Physical model used to size the switch; defaults to a model over
        the same technology.
    """

    def __init__(
        self,
        tech: TechnologyLibrary,
        switch_model: Optional[SwitchPhysicalModel] = None,
    ):
        self.tech = tech
        self.switch_model = switch_model or SwitchPhysicalModel(tech)

    # ------------------------------------------------------------------
    def _cell_area_mm2(self, radix: int, port_width: int) -> float:
        """Pure standard-cell area (utilization folded out)."""
        est = self.switch_model.estimate(radix, radix, flit_width=port_width)
        # estimate() reports placed area at the 85% baseline; recover cells.
        return est.area_mm2 * 0.85

    def _demand_coefficient(self, radix: int, port_width: int) -> float:
        """Wiring demand per mm of switch side (track-mm of wire)."""
        return (
            radix**1.5
            * math.sqrt(_W_REF * port_width)
            * _NET_LENGTH_FACTOR
        )

    def _supply_coefficient(self) -> float:
        """Routing supply per mm^2 of placed area (track-mm of supply)."""
        tracks_per_mm = self.tech.routing_tracks_per_um * 1e3
        return tracks_per_mm * _SUPPLY_EFFICIENCY

    def congestion_ratio(self, radix: int, port_width: int, utilization: float) -> float:
        """Wiring demand / supply when placed at ``utilization``."""
        if radix < 1:
            raise ValueError("radix must be >= 1")
        if port_width < 1:
            raise ValueError("port width must be >= 1")
        if not 0.0 < utilization <= 1.0:
            raise ValueError("utilization must be in (0, 1]")
        cell_area = self._cell_area_mm2(radix, port_width)
        side = math.sqrt(cell_area / utilization)
        demand = self._demand_coefficient(radix, port_width) * side
        supply = self._supply_coefficient() * side * side
        return demand / supply

    def achievable_utilization(self, radix: int, port_width: int = 32) -> float:
        """Highest row utilization at which congestion ratio <= 1.

        Closed form: ratio(u) = demand_coeff * sqrt(u) / (supply_coeff *
        sqrt(cell_area)), so u* = (supply_coeff * sqrt(cell_area) /
        demand_coeff)^2, clamped to [0, 0.98].
        """
        cell_area = self._cell_area_mm2(radix, port_width)
        u_star = (
            self._supply_coefficient()
            * math.sqrt(cell_area)
            / self._demand_coefficient(radix, port_width)
        ) ** 2
        return min(u_star, _MAX_UTILIZATION)

    def classify(self, radix: int, port_width: int = 32) -> RoutabilityVerdict:
        """Classify one switch into the Fig. 2 bands."""
        util = self.achievable_utilization(radix, port_width)
        if util >= EFFICIENT_UTILIZATION:
            cls = RoutabilityClass.EFFICIENT
        elif util >= MIN_UTILIZATION:
            cls = RoutabilityClass.DEGRADED
        else:
            cls = RoutabilityClass.DRC_INFEASIBLE
        return RoutabilityVerdict(
            radix=radix,
            port_width=port_width,
            achievable_row_utilization=util,
            congestion_ratio_at_min_util=self.congestion_ratio(
                radix, port_width, MIN_UTILIZATION
            ),
            classification=cls,
        )

    def max_feasible_radix(self, port_width: int, require_efficient: bool = False) -> int:
        """Largest radix that still closes (optionally at >= 85% util).

        With bus-class port widths (100-200 wires) this lands near the
        8x8 crossbar bound Section 4.2 quotes for commercial tools; with
        NoC flit widths (32) it is far larger — the paper's argument that
        "NoCs permit wire serialization, largely obviating the issue".
        """
        radix = 1
        while radix < 512:
            verdict = self.classify(radix + 1, port_width)
            ok = (
                verdict.classification is RoutabilityClass.EFFICIENT
                if require_efficient
                else verdict.feasible
            )
            if not ok:
                return radix
            radix += 1
        return radix
