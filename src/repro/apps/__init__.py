"""Application communication workloads."""

from repro.apps.workloads import (
    ALL_WORKLOADS,
    ApplicationWorkload,
    WorkloadFlow,
    mpeg4_decoder,
    mwd,
    pip,
    synthetic_soc,
    vopd,
    workload,
)

__all__ = [
    "ALL_WORKLOADS",
    "ApplicationWorkload",
    "WorkloadFlow",
    "mpeg4_decoder",
    "mwd",
    "pip",
    "synthetic_soc",
    "vopd",
    "workload",
]
