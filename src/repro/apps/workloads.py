"""Application communication graphs (core-to-core bandwidth specs).

The synthesis tool flow takes "the average bandwidth of communication
between the different cores" as input (Section 6), "obtained by
application profiling or from the designer's estimates".  We ship the
benchmark graphs standard in the topology-synthesis literature the
paper builds on ([9][11][42]):

* **VOPD** — Video Object Plane Decoder, 12 cores, a mostly linear
  video pipeline with a feedback loop (the canonical SunFloor example);
* **MPEG-4 decoder** — 12 cores, memory-centric: a shared SDRAM hotspot
  takes most of the traffic (the worst case for meshes, the best for
  custom/star topologies);
* **MWD** — Multi-Window Display, 12 cores, moderate parallel pipeline;
* **PIP** — Picture-In-Picture, 8 cores, two parallel shallow pipelines.

Bandwidths are in MB/s, transcribed (to the precision that matters for
topology shape) from the published communication task graphs.  A seeded
synthetic-SoC generator provides arbitrarily sized graphs of the same
character for scaling studies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class WorkloadFlow:
    """One producer-consumer flow of an application graph."""

    source: str
    destination: str
    mb_per_s: float
    latency_ns: Optional[float] = None  # average-latency constraint, if any

    def __post_init__(self) -> None:
        if self.mb_per_s <= 0:
            raise ValueError("flow bandwidth must be positive")
        if self.source == self.destination:
            raise ValueError("flow endpoints must differ")


@dataclass(frozen=True)
class ApplicationWorkload:
    """A named communication task graph."""

    name: str
    cores: Tuple[str, ...]
    flows: Tuple[WorkloadFlow, ...]

    def __post_init__(self) -> None:
        names = set(self.cores)
        if len(names) != len(self.cores):
            raise ValueError("duplicate core names")
        for flow in self.flows:
            if flow.source not in names or flow.destination not in names:
                raise ValueError(
                    f"flow {flow.source}->{flow.destination} references "
                    "unknown cores"
                )

    @property
    def total_mb_per_s(self) -> float:
        return sum(f.mb_per_s for f in self.flows)

    def bandwidth_matrix(self) -> Dict[Tuple[str, str], float]:
        out: Dict[Tuple[str, str], float] = {}
        for f in self.flows:
            out[(f.source, f.destination)] = (
                out.get((f.source, f.destination), 0.0) + f.mb_per_s
            )
        return out


def vopd() -> ApplicationWorkload:
    """Video Object Plane Decoder (12 cores), per [9]/[11]."""
    f = WorkloadFlow
    return ApplicationWorkload(
        name="vopd",
        cores=(
            "vld", "run_le_dec", "inv_scan", "acdc_pred", "stripe_mem",
            "iquant", "idct", "up_samp", "vop_rec", "pad", "vop_mem", "arm",
        ),
        flows=(
            f("vld", "run_le_dec", 70),
            f("run_le_dec", "inv_scan", 362),
            f("inv_scan", "acdc_pred", 362),
            f("acdc_pred", "stripe_mem", 49),
            f("stripe_mem", "acdc_pred", 27),
            f("acdc_pred", "iquant", 357),
            f("iquant", "idct", 353),
            f("idct", "up_samp", 300),
            f("up_samp", "vop_rec", 313),
            f("vop_rec", "pad", 313),
            f("pad", "vop_mem", 313),
            f("vop_mem", "pad", 94),
            f("arm", "idct", 16),
            f("pad", "arm", 16),
        ),
    )


def mpeg4_decoder() -> ApplicationWorkload:
    """MPEG-4 decoder (12 cores), memory-centric, per [42]."""
    f = WorkloadFlow
    return ApplicationWorkload(
        name="mpeg4",
        cores=(
            "vu", "au", "med_cpu", "dsp", "rast", "idct", "up_samp",
            "bab", "risc", "sram1", "sram2", "sdram",
        ),
        flows=(
            f("vu", "sdram", 190),
            f("sdram", "vu", 0.5),
            f("au", "sdram", 0.5),
            f("sdram", "au", 60),
            f("med_cpu", "sdram", 0.5),
            f("sdram", "med_cpu", 40),
            f("dsp", "sdram", 60),
            f("sdram", "dsp", 250),
            f("rast", "sdram", 640),
            f("idct", "sdram", 250),
            f("sdram", "up_samp", 600),
            f("up_samp", "rast", 500),
            f("bab", "sdram", 205),
            f("risc", "sram1", 910),
            f("sram1", "risc", 910),
            f("risc", "sram2", 670),
            f("sram2", "risc", 675),
            f("risc", "sdram", 500),
        ),
    )


def mwd() -> ApplicationWorkload:
    """Multi-Window Display (12 cores), per [9]."""
    f = WorkloadFlow
    return ApplicationWorkload(
        name="mwd",
        cores=(
            "in", "nr", "mem1", "hs", "vs", "jug1",
            "mem2", "hvs", "jug2", "mem3", "se", "blend",
        ),
        flows=(
            f("in", "nr", 64),
            f("in", "hs", 128),
            f("nr", "mem1", 64),
            f("nr", "hvs", 96),
            f("mem1", "hs", 64),
            f("hs", "vs", 96),
            f("vs", "jug1", 96),
            f("jug1", "mem2", 96),
            f("mem2", "hvs", 96),
            f("hvs", "jug2", 96),
            f("jug2", "mem3", 96),
            f("mem3", "se", 64),
            f("se", "blend", 16),
            f("hvs", "blend", 16),
        ),
    )


def pip() -> ApplicationWorkload:
    """Picture-In-Picture (8 cores), per [9]."""
    f = WorkloadFlow
    return ApplicationWorkload(
        name="pip",
        cores=(
            "inp_mem_a", "hs_a", "vs_a", "inp_mem_b",
            "hs_b", "vs_b", "jug", "out_mem",
        ),
        flows=(
            f("inp_mem_a", "hs_a", 128),
            f("hs_a", "vs_a", 64),
            f("vs_a", "jug", 64),
            f("inp_mem_b", "hs_b", 128),
            f("hs_b", "vs_b", 64),
            f("vs_b", "jug", 64),
            f("jug", "out_mem", 64),
        ),
    )


ALL_WORKLOADS = {
    "vopd": vopd,
    "mpeg4": mpeg4_decoder,
    "mwd": mwd,
    "pip": pip,
}


def workload(name: str) -> ApplicationWorkload:
    """Look up a bundled workload by name."""
    try:
        return ALL_WORKLOADS[name]()
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(ALL_WORKLOADS)}"
        ) from None


def synthetic_soc(
    num_cores: int,
    num_memories: int = 2,
    seed: int = 1,
    pipeline_mb_per_s: Tuple[float, float] = (50.0, 400.0),
    memory_fraction: float = 0.5,
) -> ApplicationWorkload:
    """Generate a mobile-SoC-class communication graph.

    Structure mirrors the OMAP/Nomadik-class chips of the paper's
    introduction: a processing pipeline (each core talks to the next)
    plus memory traffic (a fraction of cores stream to/from shared
    memory controllers).  Deterministic under ``seed``.
    """
    if num_cores < 2:
        raise ValueError("need at least 2 cores")
    if num_memories < 0:
        raise ValueError("memories must be non-negative")
    if not 0.0 <= memory_fraction <= 1.0:
        raise ValueError("memory fraction must be in [0, 1]")
    rng = random.Random(seed)
    cores = [f"pe_{i}" for i in range(num_cores)]
    memories = [f"mem_{j}" for j in range(num_memories)]
    lo, hi = pipeline_mb_per_s
    flows: List[WorkloadFlow] = []
    for a, b in zip(cores, cores[1:]):
        flows.append(WorkloadFlow(a, b, round(rng.uniform(lo, hi), 1)))
    if memories:
        for core in cores:
            if rng.random() < memory_fraction:
                mem = memories[rng.randrange(len(memories))]
                flows.append(WorkloadFlow(core, mem, round(rng.uniform(lo, hi), 1)))
                flows.append(WorkloadFlow(mem, core, round(rng.uniform(lo, hi), 1)))
    return ApplicationWorkload(
        name=f"synthetic{num_cores}",
        cores=tuple(cores + memories),
        flows=tuple(flows),
    )
