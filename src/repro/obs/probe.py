"""The metrics probe: periodic sampling of a live simulation.

The probe is the bridge between the simulator's always-on component
counters (``Link.flits_carried``, ``SwitchModel.stall_cycles_by_output``,
``InitiatorNI.injection_stall_cycles``...) and the observability
surfaces: at every sampling boundary it computes per-component deltas
over the window, streams one JSON row per link/switch/NI to a
:class:`~repro.obs.sinks.JsonlMetricsSink`, and folds aggregates into a
:class:`~repro.obs.metrics.MetricRegistry`.

Design constraint (and the reason sampling, not instrumentation, is the
mechanism): with metrics disabled the simulator hot loop runs exactly
the pre-observability code — the only addition is one ``is not None``
test per cycle in :meth:`NocSimulator.step`.  Enabling the probe adds
work only at sampling boundaries, amortized by the interval.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricRegistry

#: Bucket bounds for per-link interval utilization (fractions of cycles).
UTILIZATION_BOUNDS = (0.1, 0.25, 0.5, 0.75, 0.9)

#: Bucket bounds for sampled per-port buffer occupancy (flits).
OCCUPANCY_BOUNDS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0)


class MetricsProbe:
    """Periodic observer of one :class:`~repro.sim.NocSimulator`.

    Attach via :meth:`NocSimulator.enable_metrics`; the simulator calls
    :meth:`on_cycle` once per cycle and the probe decides when a window
    closes.  Call :meth:`finalize` after the run to flush the trailing
    partial window; :meth:`summary` / :meth:`compact_summary` reduce the
    lifetime counters for reports and the lab result store.
    """

    def __init__(
        self,
        sim,
        interval: int = 100,
        registry: Optional[MetricRegistry] = None,
        sink=None,
    ):
        if interval < 1:
            raise ValueError("sampling interval must be >= 1 cycle")
        self.sim = sim
        self.interval = interval
        self.registry = registry if registry is not None else MetricRegistry()
        self.sink = sink
        self.samples_taken = 0
        self._window_start = sim.cycle

        # Previous-sample snapshots for delta computation.
        self._link_prev: Dict[Tuple[str, str], Tuple[int, int]] = {
            key: (sim.links[key].flits_carried, sim.links[key].flits_dropped)
            for key in sim._link_order
        }
        self._switch_prev: Dict[str, Tuple[int, int, int]] = {
            name: self._switch_counters(sim.switches[name])
            for name in sim._switch_order
        }
        self._ni_prev: Dict[str, Tuple[int, int]] = {
            name: self._ni_counters(sim.initiators[name])
            for name in sim._initiator_order
        }

        # Lifetime peaks observed at sampling boundaries.
        self.peak_interval_utilization: Dict[Tuple[str, str], float] = {
            key: 0.0 for key in sim._link_order
        }
        self._ni_backlog_peak: Dict[str, int] = {
            name: 0 for name in sim._initiator_order
        }
        self._ni_pending_peak: Dict[str, int] = {
            name: 0 for name in sim._initiator_order
        }
        self._switch_occupancy_peak: Dict[str, int] = {
            name: 0 for name in sim._switch_order
        }

        # Registry aggregates (one row per closed window).
        r = self.registry
        self._m_flits = r.counter("flits_carried")
        self._m_stalls = r.counter("switch_stall_cycles")
        self._m_contention = r.counter("switch_contention_cycles")
        self._m_util_max = r.gauge("link_utilization_max")
        self._m_util_mean = r.gauge("link_utilization_mean")
        self._m_backlog_max = r.gauge("ni_backlog_max")
        self._m_util_hist = r.histogram(
            "link_utilization", UTILIZATION_BOUNDS
        )
        self._m_occ_hist = r.histogram(
            "buffer_occupancy", OCCUPANCY_BOUNDS
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _switch_counters(sw) -> Tuple[int, int, int]:
        return (sw.flits_forwarded, sw.stall_cycles, sw.contention_cycles)

    @staticmethod
    def _ni_counters(ni) -> Tuple[int, int]:
        return (ni.packets_retransmitted, ni.injection_stall_cycles)

    # ------------------------------------------------------------------
    # Driven by the simulator
    # ------------------------------------------------------------------
    def on_cycle(self, cycle: int) -> None:
        """End-of-cycle hook; closes the window at interval boundaries."""
        if cycle + 1 - self._window_start >= self.interval:
            self._sample(cycle + 1)

    def next_sample_cycle(self) -> int:
        """First cycle whose :meth:`on_cycle` closes a window.

        A term of the fast kernel's idle-skip horizon: window boundaries
        must land on executed cycles so the sampled per-window deltas
        match the reference kernel byte for byte.
        """
        return self._window_start + self.interval - 1

    def finalize(self) -> dict:
        """Flush the trailing partial window; returns :meth:`summary`."""
        if self.sim.cycle > self._window_start:
            self._sample(self.sim.cycle)
        return self.summary()

    # ------------------------------------------------------------------
    def _sample(self, end: int) -> None:
        """Close the window ``[self._window_start, end)``."""
        sim = self.sim
        window = end - self._window_start
        emit = self.sink.emit if self.sink is not None else None

        utilizations: List[float] = []
        for key in sim._link_order:
            link = sim.links[key]
            prev_carried, prev_dropped = self._link_prev[key]
            carried = link.flits_carried - prev_carried
            dropped = link.flits_dropped - prev_dropped
            self._link_prev[key] = (link.flits_carried, link.flits_dropped)
            util = carried / window
            utilizations.append(util)
            if util > self.peak_interval_utilization[key]:
                self.peak_interval_utilization[key] = util
            self._m_flits.inc(carried)
            self._m_util_hist.observe(util)
            if emit is not None:
                emit(
                    {
                        "cycle": end,
                        "kind": "link",
                        "name": link.name,
                        "window": window,
                        "flits": carried,
                        "utilization": round(util, 6),
                        "busy_cycles_total": link.flits_carried,
                        "dropped": dropped,
                    }
                )

        for name in sim._switch_order:
            sw = sim.switches[name]
            pf, ps, pc = self._switch_prev[name]
            forwarded = sw.flits_forwarded - pf
            stalls = sw.stall_cycles - ps
            contention = sw.contention_cycles - pc
            self._switch_prev[name] = self._switch_counters(sw)
            occupancy = sw.occupancy
            if occupancy > self._switch_occupancy_peak[name]:
                self._switch_occupancy_peak[name] = occupancy
            self._m_stalls.inc(stalls)
            self._m_contention.inc(contention)
            ports = {
                upstream: sw.inputs[upstream].occupancy
                for upstream in sorted(sw.inputs)
            }
            for occ in ports.values():
                self._m_occ_hist.observe(float(occ))
            if emit is not None:
                emit(
                    {
                        "cycle": end,
                        "kind": "switch",
                        "name": name,
                        "window": window,
                        "forwarded": forwarded,
                        "stall_cycles": stalls,
                        "contention_cycles": contention,
                        "occupancy": occupancy,
                        "port_occupancy": ports,
                    }
                )

        backlog_max = 0
        for name in sim._initiator_order:
            ni = sim.initiators[name]
            prev_rt, prev_stall = self._ni_prev[name]
            retransmitted = ni.packets_retransmitted - prev_rt
            inj_stalls = ni.injection_stall_cycles - prev_stall
            self._ni_prev[name] = self._ni_counters(ni)
            backlog = ni.backlog
            pending = ni.pending_transfers
            if backlog > backlog_max:
                backlog_max = backlog
            if backlog > self._ni_backlog_peak[name]:
                self._ni_backlog_peak[name] = backlog
            if pending > self._ni_pending_peak[name]:
                self._ni_pending_peak[name] = pending
            if emit is not None:
                emit(
                    {
                        "cycle": end,
                        "kind": "ni",
                        "name": name,
                        "window": window,
                        "backlog": backlog,
                        "pending_transfers": pending,
                        "retransmitted": retransmitted,
                        "injection_stall_cycles": inj_stalls,
                        "target_backlog": sim.targets[name].backlog,
                    }
                )

        self._m_util_max.set(max(utilizations) if utilizations else 0.0)
        self._m_util_mean.set(
            sum(utilizations) / len(utilizations) if utilizations else 0.0
        )
        self._m_backlog_max.set(backlog_max)
        if emit is not None:
            row = self.registry.row(end)
            row["kind"] = "aggregate"
            row["window"] = window
            emit(row)
        self.samples_taken += 1
        self._window_start = end

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Full lifetime reduction: every link, switch, and NI."""
        sim = self.sim
        cycles = max(1, sim.cycle)
        links = {}
        for key in sim._link_order:
            link = sim.links[key]
            links[link.name] = {
                "busy_cycles": link.flits_carried,
                "utilization": link.flits_carried / cycles,
                "peak_interval_utilization": (
                    self.peak_interval_utilization[key]
                ),
                "flits_dropped": link.flits_dropped,
            }
        switches = {}
        for name in sim._switch_order:
            sw = sim.switches[name]
            switches[name] = {
                "flits_forwarded": sw.flits_forwarded,
                "stall_cycles": sw.stall_cycles,
                "contention_cycles": sw.contention_cycles,
                "contention_losers": sw.contention_losers,
                "lock_hold_cycles": sw.lock_hold_cycles,
                "locks_taken": sw.locks_taken,
                "mean_lock_hold_cycles": sw.mean_lock_hold_cycles,
                "peak_buffer_occupancy": max(
                    (p.peak_occupancy for p in sw.inputs.values()), default=0
                ),
            }
        nis = {}
        for name in sim._initiator_order:
            ni = sim.initiators[name]
            nis[name] = {
                "packets_injected": ni.packets_injected,
                "injection_stall_cycles": ni.injection_stall_cycles,
                "packets_retransmitted": ni.packets_retransmitted,
                "peak_backlog": self._ni_backlog_peak[name],
                "peak_pending_transfers": self._ni_pending_peak[name],
            }
        return {
            "cycles": sim.cycle,
            "interval": self.interval,
            "samples": self.samples_taken,
            "links": links,
            "switches": switches,
            "nis": nis,
        }

    def compact_summary(self, top: int = 5) -> dict:
        """Small, store-friendly reduction (for lab sweep records)."""
        full = self.summary()
        links = full["links"]
        ranked = sorted(
            links.items(), key=lambda kv: (-kv[1]["busy_cycles"], kv[0])
        )
        utilizations = [v["utilization"] for v in links.values()]
        return {
            "cycles": full["cycles"],
            "interval": full["interval"],
            "samples": full["samples"],
            "peak_link_utilization": max(utilizations, default=0.0),
            "mean_link_utilization": (
                sum(utilizations) / len(utilizations) if utilizations else 0.0
            ),
            "top_links": [
                {
                    "link": name,
                    "busy_cycles": v["busy_cycles"],
                    "utilization": v["utilization"],
                }
                for name, v in ranked[:top]
            ],
            "total_stall_cycles": sum(
                s["stall_cycles"] for s in full["switches"].values()
            ),
            "total_contention_cycles": sum(
                s["contention_cycles"] for s in full["switches"].values()
            ),
            "max_ni_peak_backlog": max(
                (n["peak_backlog"] for n in full["nis"].values()), default=0
            ),
            "packets_retransmitted": sum(
                n["packets_retransmitted"] for n in full["nis"].values()
            ),
        }
