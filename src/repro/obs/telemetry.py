"""Service-level telemetry: distributed tracing and metrics exposition.

Three primitives unify the operational story of the whole stack:

* **Spans** (:class:`Span`, :class:`Tracer`) — lightweight distributed
  tracing.  A span is one timed operation; spans share a ``trace_id``
  and link through ``parent_id``, so one submitted job's journey —
  submission, queue wait, every supervised attempt with its retries and
  backoff, checkpoint saves and the restore point — renders as a single
  tree.  Context propagates on ``ContextVar``\\ s (:func:`use_tracer`,
  :func:`current_span`) inside a process and as plain
  ``(trace_id, parent_id)`` pairs across process and HTTP boundaries
  (the ``X-Trace-Id`` header, worker payloads).

* **TelemetryHub** — the aggregation point one process exposes: a
  :class:`~repro.obs.metrics.MetricRegistry` of counters/gauges/latency
  histograms plus scrape-time sources, rendered as Prometheus text
  exposition (:meth:`TelemetryHub.render_prometheus`) with
  p50/p95/p99 quantile summaries, and a bounded buffer of finished
  spans (local ends and ingested worker exports).

* **Exports** — spans serialize to the same artifact formats the
  observability sinks already speak: JSONL (one span per line,
  :func:`load_spans` round-trips it) and the Chrome trace-event format
  (:func:`spans_to_chrome`), so Perfetto renders a job timeline next to
  the simulator's own flit traces.  :func:`render_span_trees` is the
  terminal view (``repro trace``) with critical-path annotation.

The contract inherited from PR 3 holds: telemetry is observation only.
Nothing here enters a job's cache key, and with no tracer installed
every hook (:func:`add_event`, :func:`span`) is a ContextVar read —
telemetry-off runs are byte-identical.
"""

from __future__ import annotations

import json
import re
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs.metrics import MetricRegistry, WindowedHistogram

#: HTTP header carrying the trace id from client to server.
TRACE_HEADER = "X-Trace-Id"

#: Characters allowed in an externally supplied trace id.
_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

#: Default bucket bounds (seconds) for service latency histograms:
#: sub-millisecond cache hits through multi-minute simulations.
LATENCY_BOUNDS_S = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Quantiles exported in Prometheus summaries and span statistics.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-char span id."""
    return uuid.uuid4().hex[:16]


def valid_trace_id(trace_id: str) -> bool:
    """True when an externally supplied trace id is safe to adopt."""
    return bool(_TRACE_ID_RE.match(trace_id))


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
@dataclass
class Span:
    """One timed operation inside a trace.

    Wall-clock ``start_unix`` anchors the span for display and
    cross-process alignment; the duration is measured with
    ``time.monotonic`` so clock steps cannot produce negative spans.
    ``events`` are point-in-time annotations (retry, backoff,
    checkpoint save/restore) with offsets from the span start.
    """

    name: str
    trace_id: str
    span_id: str = field(default_factory=new_span_id)
    parent_id: Optional[str] = None
    start_unix: float = 0.0
    duration_s: Optional[float] = None
    status: str = "ok"
    attrs: Dict[str, Any] = field(default_factory=dict)
    events: List[dict] = field(default_factory=list)
    _start_mono: float = field(default=0.0, repr=False)
    _on_end: Optional[Callable[["Span"], None]] = field(
        default=None, repr=False
    )

    @property
    def ended(self) -> bool:
        return self.duration_s is not None

    @property
    def end_unix(self) -> float:
        return self.start_unix + (self.duration_s or 0.0)

    def event(self, name: str, **attrs: Any) -> dict:
        """Attach a point-in-time event at the current offset."""
        evt = {
            "name": name,
            "t_offset_s": round(
                max(0.0, time.monotonic() - self._start_mono), 6
            ),
        }
        if attrs:
            evt.update(attrs)
        self.events.append(evt)
        return evt

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def end(self, status: Optional[str] = None) -> "Span":
        """Close the span (idempotent) and export it to the tracer."""
        if self.ended:
            return self
        self.duration_s = round(
            max(0.0, time.monotonic() - self._start_mono), 9
        )
        if status is not None:
            self.status = status
        if self._on_end is not None:
            self._on_end(self)
        return self

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        doc: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": round(self.start_unix, 6),
            "duration_s": self.duration_s,
            "status": self.status,
        }
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        if self.events:
            doc["events"] = list(self.events)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "Span":
        return cls(
            name=doc["name"],
            trace_id=doc["trace_id"],
            span_id=doc.get("span_id") or new_span_id(),
            parent_id=doc.get("parent_id"),
            start_unix=float(doc.get("start_unix", 0.0)),
            duration_s=doc.get("duration_s"),
            status=doc.get("status", "ok"),
            attrs=dict(doc.get("attrs", {})),
            events=list(doc.get("events", [])),
        )


class Tracer:
    """Creates spans and hands finished ones to an export callback.

    Thread-safe by construction: span creation touches no shared state
    and ``on_end`` receivers (the hub, a worker's frame queue) do their
    own locking.
    """

    def __init__(self, on_end: Optional[Callable[[Span], None]] = None):
        self.on_end = on_end
        self.spans_started = 0

    def start_span(
        self,
        name: str,
        *,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        attrs: Optional[Mapping[str, Any]] = None,
    ) -> Span:
        """A new live span; defaults parentage to the current span."""
        parent = current_span()
        if trace_id is None:
            trace_id = parent.trace_id if parent else new_trace_id()
        if parent_id is None and parent is not None:
            parent_id = parent.span_id
        self.spans_started += 1
        return Span(
            name=name,
            trace_id=trace_id,
            parent_id=parent_id,
            start_unix=time.time(),
            attrs=dict(attrs) if attrs else {},
            _start_mono=time.monotonic(),
            _on_end=self.on_end,
        )

    @contextmanager
    def span(
        self,
        name: str,
        *,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        attrs: Optional[Mapping[str, Any]] = None,
    ):
        """Context-managed span, installed as the current span."""
        s = self.start_span(
            name, trace_id=trace_id, parent_id=parent_id, attrs=attrs
        )
        token = _SPAN.set(s)
        try:
            yield s
        except BaseException as exc:
            s.end(status=f"error:{type(exc).__name__}")
            raise
        else:
            s.end()
        finally:
            _SPAN.reset(token)


# ----------------------------------------------------------------------
# Context propagation
# ----------------------------------------------------------------------
_TRACER: ContextVar[Optional[Tracer]] = ContextVar(
    "repro_obs_tracer", default=None
)
_SPAN: ContextVar[Optional[Span]] = ContextVar(
    "repro_obs_span", default=None
)


def current_tracer() -> Optional[Tracer]:
    """The tracer installed for this context, if any."""
    return _TRACER.get()


def current_span() -> Optional[Span]:
    """The innermost live span of this context, if any."""
    return _SPAN.get()


@contextmanager
def use_tracer(tracer: Optional[Tracer]):
    """Install ``tracer`` as the context's tracer."""
    token = _TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _TRACER.reset(token)


@contextmanager
def activate_span(span: Optional[Span], tracer: Optional[Tracer] = None):
    """Make an externally managed span the context's current span.

    The server uses this around admission/queueing so library hooks
    (:func:`add_event` in :mod:`repro.serve.session`) land on the job's
    root span without the span's lifetime being tied to the context.
    """
    span_token = _SPAN.set(span)
    tracer_token = _TRACER.set(tracer) if tracer is not None else None
    try:
        yield span
    finally:
        _SPAN.reset(span_token)
        if tracer_token is not None:
            _TRACER.reset(tracer_token)


@contextmanager
def span(name: str, **attrs: Any):
    """A child span of the current context — or a free no-op.

    This is the hook production code embeds: with no tracer installed
    the cost is one ContextVar read and results are untouched.
    """
    tracer = _TRACER.get()
    if tracer is None:
        yield None
        return
    with tracer.span(name, attrs=attrs or None) as s:
        yield s


def add_event(name: str, **attrs: Any) -> bool:
    """Annotate the current span; False (and free) when none is live.

    The no-op path is the telemetry-off contract: a bare ContextVar
    read, no allocation, no behavioural difference.
    """
    s = _SPAN.get()
    if s is None or s.ended:
        return False
    s.event(name, **attrs)
    return True


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
#: Content type of the exposition format we emit.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")
_METRIC_LINE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"          # metric name
    r"(?:\{([^{}]*)\})?"                     # optional labels
    r"\s+"
    r"([+-]?(?:\d+(?:\.\d*)?(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?"
    r"|Inf|NaN))"                            # value
    r"(?:\s+[+-]?\d+)?\s*$"                  # optional timestamp
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_VALID_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")


def sanitize_metric_name(name: str) -> str:
    """Map an internal dotted metric name onto the Prometheus charset."""
    name = _NAME_SANITIZE_RE.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def parse_prometheus_text(text: str) -> dict:
    """Parse (and syntax-validate) Prometheus text exposition.

    Returns ``{"types": {name: type}, "help": {name: text},
    "samples": [(name, labels_dict, value), ...]}``.  Raises
    :class:`ValueError` naming the offending line on any syntax error —
    which is exactly what the CI smoke test wants from a scrape.
    """
    types: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                mtype = parts[3] if len(parts) > 3 else ""
                if mtype not in _VALID_TYPES:
                    raise ValueError(
                        f"line {lineno}: invalid metric type {mtype!r}"
                    )
                types[parts[2]] = mtype
            elif len(parts) >= 3 and parts[1] == "HELP":
                helps[parts[2]] = parts[3] if len(parts) > 3 else ""
            # other comments are legal and ignored
            continue
        m = _METRIC_LINE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name, label_blob, value = m.group(1), m.group(2), m.group(3)
        labels: Dict[str, str] = {}
        if label_blob:
            matched = _LABEL_RE.findall(label_blob)
            stripped = _LABEL_RE.sub("", label_blob)
            if stripped.strip(", \t"):
                raise ValueError(
                    f"line {lineno}: malformed labels {label_blob!r}"
                )
            for key, val in matched:
                labels[key] = (
                    val.replace(r"\"", '"')
                    .replace(r"\n", "\n")
                    .replace("\\\\", "\\")
                )
        samples.append((name, labels, float(value)))
    return {"types": types, "help": helps, "samples": samples}


# ----------------------------------------------------------------------
# The hub
# ----------------------------------------------------------------------
class TelemetryHub:
    """One process's aggregation point for metrics and finished spans.

    * ``registry`` — a :class:`MetricRegistry` the host increments
      directly (histograms here are *cumulative*: the hub never resets
      them, so :meth:`render_prometheus` can state lifetime quantiles);
    * counter/gauge **sources** — callables polled at scrape time that
      surface state living elsewhere (the server's queue depth, the
      cache's hit counters) without mirroring writes;
    * attached registries — other components' own
      :class:`MetricRegistry` instances (e.g. a
      :class:`~repro.resilience.supervise.SupervisedExecutor`'s
      counters), folded into the same exposition;
    * a bounded deque of finished spans, fed by the hub's own tracer
      and by :meth:`ingest_span` for spans exported from workers.
    """

    def __init__(
        self,
        registry: Optional[MetricRegistry] = None,
        span_buffer: int = 20_000,
    ):
        if span_buffer < 1:
            raise ValueError("span buffer needs room for at least one span")
        self.registry = registry if registry is not None else MetricRegistry()
        self.tracer = Tracer(on_end=self.record_span)
        self._spans: "deque[dict]" = deque(maxlen=span_buffer)
        self.spans_dropped = 0
        self.spans_recorded = 0
        self._span_buffer = span_buffer
        self._lock = threading.Lock()
        self._counter_sources: List[Callable[[], Mapping[str, float]]] = []
        self._gauge_sources: List[Callable[[], Mapping[str, float]]] = []
        self._registries: List[Tuple[str, MetricRegistry]] = []

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def record_span(self, span: Union[Span, Mapping[str, Any]]) -> None:
        doc = span.to_dict() if isinstance(span, Span) else dict(span)
        with self._lock:
            if len(self._spans) >= self._span_buffer:
                self.spans_dropped += 1
            self._spans.append(doc)
            self.spans_recorded += 1

    def ingest_span(self, doc: Mapping[str, Any]) -> None:
        """Record a span exported by another process (a worker)."""
        self.record_span(doc)

    def spans(self, trace_id: Optional[str] = None) -> List[dict]:
        """Finished spans (optionally one trace), oldest first."""
        with self._lock:
            spans = list(self._spans)
        if trace_id is not None:
            spans = [s for s in spans if s.get("trace_id") == trace_id]
        return spans

    def trace_ids(self) -> List[str]:
        with self._lock:
            seen: Dict[str, None] = {}
            for s in self._spans:
                seen.setdefault(s.get("trace_id", ""), None)
        return [t for t in seen if t]

    def export_spans(
        self, path: Union[str, Path], trace_id: Optional[str] = None
    ) -> int:
        """Write spans as JSONL (the :func:`load_spans` format)."""
        spans = self.spans(trace_id)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for doc in spans:
                fh.write(json.dumps(doc, separators=(",", ":")) + "\n")
        return len(spans)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def latency_histogram(self, name: str) -> WindowedHistogram:
        """A cumulative latency histogram with the service bounds."""
        return self.registry.histogram(name, LATENCY_BOUNDS_S)

    def add_counter_source(
        self, fn: Callable[[], Mapping[str, float]]
    ) -> None:
        """Poll ``fn`` at scrape time for ``{name: monotonic_total}``."""
        self._counter_sources.append(fn)

    def add_gauge_source(
        self, fn: Callable[[], Mapping[str, float]]
    ) -> None:
        """Poll ``fn`` at scrape time for ``{name: point_in_time}``."""
        self._gauge_sources.append(fn)

    def attach_registry(
        self, registry: MetricRegistry, prefix: str = ""
    ) -> None:
        """Fold another component's registry into the exposition."""
        self._registries.append((prefix, registry))

    # ------------------------------------------------------------------
    def render_prometheus(self) -> str:
        """The hub's whole state in Prometheus text exposition format."""
        lines: List[str] = []
        emitted: Dict[str, str] = {}

        def head(name: str, mtype: str) -> str:
            prom = sanitize_metric_name(name)
            prev = emitted.get(prom)
            if prev is None:
                lines.append(f"# TYPE {prom} {mtype}")
                emitted[prom] = mtype
            return prom

        def emit_registry(prefix: str, registry: MetricRegistry) -> None:
            for cname in sorted(registry._counters):
                prom = head(prefix + cname, "counter")
                value = registry._counters[cname].value
                lines.append(f"{prom} {_format_value(value)}")
            for gname in sorted(registry._gauges):
                prom = head(prefix + gname, "gauge")
                value = registry._gauges[gname].value
                lines.append(f"{prom} {_format_value(value)}")
            for hname in sorted(registry._histograms):
                hist = registry._histograms[hname]
                prom = head(prefix + hname, "summary")
                for q in SUMMARY_QUANTILES:
                    lines.append(
                        f'{prom}{{quantile="{q:g}"}} '
                        f"{_format_value(hist.quantile(q))}"
                    )
                lines.append(f"{prom}_sum {_format_value(hist.total)}")
                lines.append(f"{prom}_count {_format_value(hist.count)}")

        emit_registry("", self.registry)
        for prefix, registry in self._registries:
            emit_registry(prefix, registry)
        for source in self._counter_sources:
            for name, value in sorted(source().items()):
                prom = head(name, "counter")
                lines.append(f"{prom} {_format_value(float(value))}")
        for source in self._gauge_sources:
            for name, value in sorted(source().items()):
                prom = head(name, "gauge")
                lines.append(f"{prom} {_format_value(float(value))}")
        prom = head("repro_telemetry_spans_recorded", "counter")
        lines.append(f"{prom} {self.spans_recorded}")
        prom = head("repro_telemetry_spans_dropped", "counter")
        lines.append(f"{prom} {self.spans_dropped}")
        return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Span trees: loading, rendering, critical path, Chrome export
# ----------------------------------------------------------------------
def load_spans(path: Union[str, Path]) -> List[dict]:
    """Read spans from JSONL: raw span dicts *or* captured NDJSON
    stream frames (``{"type": "span", "span": {...}}``) — both formats
    the stack emits."""
    spans: List[dict] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue
            if not isinstance(doc, dict):
                continue
            if doc.get("type") == "span" and isinstance(
                doc.get("span"), dict
            ):
                doc = doc["span"]
            if "trace_id" in doc and "name" in doc and "span_id" in doc:
                spans.append(doc)
    return spans


def _children_index(spans: Sequence[Mapping]) -> Dict[Optional[str], List]:
    by_parent: Dict[Optional[str], List] = {}
    ids = {s["span_id"] for s in spans}
    for s in spans:
        parent = s.get("parent_id")
        if parent not in ids:
            parent = None  # orphan (parent span lost, e.g. killed worker)
        by_parent.setdefault(parent, []).append(s)
    for kids in by_parent.values():
        kids.sort(key=lambda s: (s.get("start_unix", 0.0), s["span_id"]))
    return by_parent


def critical_path(spans: Sequence[Mapping]) -> List[str]:
    """Span ids on the critical path: from each root, repeatedly the
    child whose *end* time is latest — the chain that gated the trace's
    completion."""
    if not spans:
        return []
    by_parent = _children_index(spans)

    def end_of(s: Mapping) -> float:
        return s.get("start_unix", 0.0) + (s.get("duration_s") or 0.0)

    roots = by_parent.get(None, [])
    if not roots:
        return []
    path: List[str] = []
    node = max(roots, key=end_of)
    while node is not None:
        path.append(node["span_id"])
        kids = by_parent.get(node["span_id"], [])
        node = max(kids, key=end_of) if kids else None
    return path


def render_span_trees(
    spans: Sequence[Mapping],
    trace_id: Optional[str] = None,
    critical: bool = True,
) -> str:
    """ASCII span trees, one per trace, with critical-path markers."""
    if trace_id is not None:
        spans = [s for s in spans if s.get("trace_id") == trace_id]
    by_trace: Dict[str, List[dict]] = {}
    for s in spans:
        by_trace.setdefault(s.get("trace_id", "?"), []).append(dict(s))

    out: List[str] = []
    for tid in by_trace:
        group = by_trace[tid]
        crit = set(critical_path(group)) if critical else set()
        by_parent = _children_index(group)
        starts = [s.get("start_unix", 0.0) for s in group]
        ends = [
            s.get("start_unix", 0.0) + (s.get("duration_s") or 0.0)
            for s in group
        ]
        total = max(ends) - min(starts) if group else 0.0
        out.append(
            f"trace {tid}  ({len(group)} spans, {total:.3f}s"
            + (", * = critical path" if crit else "")
            + ")"
        )

        def walk(parent: Optional[str], prefix: str) -> None:
            kids = by_parent.get(parent, [])
            for i, s in enumerate(kids):
                last = i == len(kids) - 1
                branch = "└─ " if last else "├─ "
                cont = "   " if last else "│  "
                dur = s.get("duration_s")
                dur_s = f"{dur:.3f}s" if dur is not None else "(live)"
                status = s.get("status", "ok")
                badge = "" if status == "ok" else f"  !{status}"
                mark = "  *" if s["span_id"] in crit else ""
                attrs = s.get("attrs") or {}
                attr_s = ""
                if attrs:
                    keys = sorted(attrs)[:4]
                    attr_s = (
                        "  ["
                        + " ".join(f"{k}={attrs[k]}" for k in keys)
                        + "]"
                    )
                out.append(
                    f"{prefix}{branch}{s['name']}  {dur_s}"
                    f"{badge}{mark}{attr_s}"
                )
                for evt in s.get("events", []):
                    extra = " ".join(
                        f"{k}={v}"
                        for k, v in sorted(evt.items())
                        if k not in ("name", "t_offset_s")
                    )
                    out.append(
                        f"{prefix}{cont}  • +{evt.get('t_offset_s', 0):.3f}s "
                        f"{evt['name']}" + (f"  {extra}" if extra else "")
                    )
                walk(s["span_id"], prefix + cont)

        walk(None, "")
        out.append("")
    return "\n".join(out).rstrip("\n") + ("\n" if out else "")


def spans_to_chrome(spans: Sequence[Mapping]) -> dict:
    """Spans as a Chrome trace-event document (Perfetto-loadable).

    Spans become complete events (``"ph": "X"``) with microsecond
    timestamps relative to the earliest span; events become instants on
    the same track.  One thread track per trace.
    """
    doc: Dict[str, Any] = {"displayTimeUnit": "ms", "traceEvents": []}
    if not spans:
        return doc
    t0 = min(s.get("start_unix", 0.0) for s in spans)
    tids: Dict[str, int] = {}
    events: List[dict] = doc["traceEvents"]
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro-telemetry"},
        }
    )
    for s in spans:
        tid = tids.get(s.get("trace_id", "?"))
        if tid is None:
            tid = len(tids) + 1
            tids[s.get("trace_id", "?")] = tid
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": f"trace {s.get('trace_id', '?')}"},
                }
            )
        start_us = (s.get("start_unix", 0.0) - t0) * 1e6
        dur_us = (s.get("duration_s") or 0.0) * 1e6
        events.append(
            {
                "name": s.get("name", "?"),
                "cat": "span",
                "ph": "X",
                "ts": round(start_us, 3),
                "dur": round(dur_us, 3),
                "pid": 0,
                "tid": tid,
                "args": {
                    "span_id": s.get("span_id"),
                    "parent_id": s.get("parent_id"),
                    "status": s.get("status", "ok"),
                    **(s.get("attrs") or {}),
                },
            }
        )
        for evt in s.get("events", []):
            events.append(
                {
                    "name": evt.get("name", "event"),
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": round(
                        start_us + evt.get("t_offset_s", 0.0) * 1e6, 3
                    ),
                    "pid": 0,
                    "tid": tid,
                    "args": {
                        k: v
                        for k, v in evt.items()
                        if k not in ("name", "t_offset_s")
                    },
                }
            )
    return doc
