"""repro.obs — observability for the NoC stack.

Metrics (counters/gauges/windowed histograms), streaming trace sinks
(JSONL and Chrome trace-event/Perfetto), periodic sampling of live
simulations, and bottleneck attribution reports.  See
``docs/tutorial.md`` §8 and ``examples/observability_tour.py``.

Typical use::

    sim = NocSimulator(topology, table, params)
    probe = sim.enable_metrics(interval=100,
                               sink=JsonlMetricsSink("metrics.jsonl"))
    sim.run(10_000, traffic, drain=True)
    summary = probe.finalize()
    print(bottleneck_report(sim, probe).to_text())
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricRegistry,
    WindowedHistogram,
)
from repro.obs.probe import MetricsProbe
from repro.obs.report import (
    BottleneckReport,
    HotLink,
    bottleneck_report,
    congestion_csv,
    congestion_heatmap,
)
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlMetricsSink,
    JsonlTraceSink,
    QueueSink,
    TraceFanout,
)

__all__ = [
    "BottleneckReport",
    "ChromeTraceSink",
    "Counter",
    "Gauge",
    "HotLink",
    "JsonlMetricsSink",
    "JsonlTraceSink",
    "MetricRegistry",
    "MetricsProbe",
    "QueueSink",
    "TraceFanout",
    "WindowedHistogram",
    "bottleneck_report",
    "congestion_csv",
    "congestion_heatmap",
]
