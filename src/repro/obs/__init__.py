"""repro.obs — observability for the NoC stack.

Metrics (counters/gauges/windowed histograms), streaming trace sinks
(JSONL and Chrome trace-event/Perfetto), periodic sampling of live
simulations, and bottleneck attribution reports.  See
``docs/tutorial.md`` §8 and ``examples/observability_tour.py``.

Typical use::

    sim = NocSimulator(topology, table, params)
    probe = sim.enable_metrics(interval=100,
                               sink=JsonlMetricsSink("metrics.jsonl"))
    sim.run(10_000, traffic, drain=True)
    summary = probe.finalize()
    print(bottleneck_report(sim, probe).to_text())
"""

from repro.obs.logs import (
    JsonLogFormatter,
    bind_log_context,
    configure_logging,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricRegistry,
    WindowedHistogram,
)
from repro.obs.probe import MetricsProbe
from repro.obs.telemetry import (
    PROMETHEUS_CONTENT_TYPE,
    TRACE_HEADER,
    Span,
    TelemetryHub,
    Tracer,
    add_event,
    critical_path,
    current_span,
    current_tracer,
    load_spans,
    new_trace_id,
    parse_prometheus_text,
    render_span_trees,
    span,
    spans_to_chrome,
    use_tracer,
    valid_trace_id,
)
from repro.obs.report import (
    BottleneckReport,
    HotLink,
    bottleneck_report,
    congestion_csv,
    congestion_heatmap,
)
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlMetricsSink,
    JsonlTraceSink,
    QueueSink,
    TraceFanout,
)

__all__ = [
    "BottleneckReport",
    "ChromeTraceSink",
    "Counter",
    "Gauge",
    "HotLink",
    "JsonLogFormatter",
    "JsonlMetricsSink",
    "JsonlTraceSink",
    "MetricRegistry",
    "MetricsProbe",
    "PROMETHEUS_CONTENT_TYPE",
    "QueueSink",
    "Span",
    "TelemetryHub",
    "TraceFanout",
    "Tracer",
    "TRACE_HEADER",
    "WindowedHistogram",
    "add_event",
    "bind_log_context",
    "bottleneck_report",
    "configure_logging",
    "congestion_csv",
    "congestion_heatmap",
    "critical_path",
    "current_span",
    "current_tracer",
    "load_spans",
    "new_trace_id",
    "parse_prometheus_text",
    "render_span_trees",
    "span",
    "spans_to_chrome",
    "use_tracer",
    "valid_trace_id",
]
