"""Correlated structured logging for the serve/resilience stack.

One JSON object per line on stderr (or any stream/file), every line
stamped with whatever correlation context is live: the current trace
id and span from :mod:`repro.obs.telemetry`, plus any explicit fields
bound with :func:`bind_log_context` (job id, session, attempt).  Lines
from the server, a supervisor, and a worker that served the same job
therefore all grep together by ``trace_id`` — the logging half of the
"one job, one story" contract the span tree tells.

Built on stdlib ``logging`` so library code keeps using module loggers
(``logging.getLogger("repro.serve")``) and hosts opt in by calling
:func:`configure_logging`; with no call, repro loggers stay silent
(a ``NullHandler`` on the ``repro`` root) exactly as before.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Mapping, Optional

from repro.obs.telemetry import current_span

#: Fields every JSON log line carries, in this order.
_BASE_FIELDS = ("ts", "level", "logger", "message")

#: LogRecord attributes that are plumbing, not user data.
_RECORD_INTERNAL = frozenset(
    (
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "module", "msecs",
        "msg", "message", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "taskName", "thread",
        "threadName",
    )
)

_CONTEXT: ContextVar[Optional[Dict[str, Any]]] = ContextVar(
    "repro_obs_log_context", default=None
)


def log_context() -> Dict[str, Any]:
    """The explicit correlation fields bound for this context."""
    ctx = _CONTEXT.get()
    return dict(ctx) if ctx else {}


@contextmanager
def bind_log_context(**fields: Any):
    """Stamp ``fields`` (job_id, session, ...) on every log line inside.

    Nests: inner bindings extend outer ones and win on key collisions.
    """
    current = _CONTEXT.get() or {}
    token = _CONTEXT.set({**current, **fields})
    try:
        yield
    finally:
        _CONTEXT.reset(token)


class JsonLogFormatter(logging.Formatter):
    """Render each record as one JSON object with correlation stamps.

    Order is stable (base fields, then trace context, then bound and
    per-call extras sorted by key) so lines diff cleanly.  Values that
    refuse JSON are stringified rather than raised — logging must never
    take the service down.
    """

    def format(self, record: logging.LogRecord) -> str:
        doc: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        span = current_span()
        if span is not None:
            doc.setdefault("trace_id", span.trace_id)
            doc.setdefault("span_id", span.span_id)
        extras: Dict[str, Any] = {}
        ctx = _CONTEXT.get()
        if ctx:
            extras.update(ctx)
        for key, value in record.__dict__.items():
            if key in _RECORD_INTERNAL or key in _BASE_FIELDS:
                continue
            if key.startswith("_"):
                continue
            extras[key] = value
        for key in sorted(extras):
            if key not in doc:
                doc[key] = extras[key]
        if record.exc_info and record.exc_info[0] is not None:
            doc["exception"] = self.formatException(record.exc_info)
        try:
            return json.dumps(doc, separators=(",", ":"), default=str)
        except (TypeError, ValueError):
            return json.dumps(
                {k: str(v) for k, v in doc.items()},
                separators=(",", ":"),
            )


def configure_logging(
    level: int = logging.INFO,
    stream=None,
    logger: str = "repro",
) -> logging.Handler:
    """Route ``repro.*`` loggers through the JSON formatter.

    Idempotent: an existing JSON handler on the target logger is
    replaced, not duplicated, so test harnesses and repeated CLI entry
    points can call this freely.  Returns the installed handler.
    """
    root = logging.getLogger(logger)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_json", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonLogFormatter())
    handler._repro_json = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return handler


# Silence by default: importing repro must not spray logs on hosts that
# never opted in (same posture as warnings-free library code).
logging.getLogger("repro").addHandler(logging.NullHandler())
