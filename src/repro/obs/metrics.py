"""Lightweight metric primitives: counters, gauges, windowed histograms.

The registry is the in-memory half of the observability subsystem: the
:class:`~repro.obs.probe.MetricsProbe` owns one, updates it at every
sampling boundary, and streams the resulting rows to a sink.  Nothing
here touches the simulator hot loop — metrics are *sampled* from the
always-on component counters (``flits_carried``, ``stall_cycles``,
``occupancy``...) at a configurable interval, so a disabled probe costs
the simulation exactly one ``is not None`` test per cycle.

All three metric kinds are plain Python and JSON-friendly:

* :class:`Counter` — a monotonically increasing total;
* :class:`Gauge` — a point-in-time value (last write wins), tracking
  its own maximum;
* :class:`WindowedHistogram` — fixed bucket bounds, filled during one
  sampling window and reset when snapshotted, so each emitted row
  describes exactly one interval.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence


class Counter:
    """Monotonic total (e.g. flits carried, stall cycles)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only move forward")
        self.value += amount


class Gauge:
    """Point-in-time value with running maximum (e.g. buffer occupancy)."""

    __slots__ = ("name", "value", "maximum")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.maximum = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.maximum:
            self.maximum = value


class WindowedHistogram:
    """Histogram over the current sampling window.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    overflow bucket catches everything beyond the last bound.
    :meth:`snapshot` returns the window's distribution and resets it.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "maximum")

    def __init__(self, name: str, bounds: Sequence[float]):
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = list(bounds)
        if ordered != sorted(ordered):
            raise ValueError("bucket bounds must be sorted ascending")
        self.name = name
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)  # + overflow
        self.count = 0
        self.total = 0.0
        self.maximum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear bucket interpolation.

        Standard Prometheus-style estimation: find the bucket holding
        the ``q * count``-th observation and interpolate linearly
        between its edges.  The first finite bucket interpolates from
        ``min(0, upper)`` (observations are non-negative in every
        latency/utilization use here; a genuinely negative bound keeps
        its own edge).  The overflow bucket has no upper edge, so any
        quantile landing there reports the tracked ``maximum`` — and
        every estimate is clamped to ``maximum``, which keeps
        single-observation and sparse windows honest.

        Raises :class:`ValueError` outside ``0 <= q <= 1``; returns
        ``0.0`` for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            below = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                if i == len(self.bounds):  # overflow: no upper edge
                    return self.maximum
                upper = self.bounds[i]
                lower = self.bounds[i - 1] if i > 0 else min(0.0, upper)
                fraction = (rank - below) / bucket_count
                fraction = min(1.0, max(0.0, fraction))
                return min(lower + (upper - lower) * fraction, self.maximum)
        return self.maximum

    def snapshot(self, reset: bool = True) -> dict:
        """The window's distribution as plain data (then reset it)."""
        snap = {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "mean": self.mean,
            "max": self.maximum,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }
        if reset:
            self.counts = [0] * (len(self.bounds) + 1)
            self.count = 0
            self.total = 0.0
            self.maximum = 0.0
        return snap


class MetricRegistry:
    """Named metric namespace shared by probe, sinks, and reports.

    Metrics are created on first access (``registry.counter("x")``) and
    are stable thereafter; asking for an existing name with a different
    kind is an error — a registry is a flat, typed namespace.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, WindowedHistogram] = {}

    def _claim(self, name: str, kind: str) -> None:
        for owner, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if owner != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {owner}"
                )

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._claim(name, "counter")
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._claim(name, "gauge")
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> WindowedHistogram:
        if name not in self._histograms:
            self._claim(name, "histogram")
            if bounds is None:
                raise ValueError(
                    f"first access to histogram {name!r} must supply bounds"
                )
            self._histograms[name] = WindowedHistogram(name, bounds)
        return self._histograms[name]

    def names(self) -> List[str]:
        return sorted(
            list(self._counters)
            + list(self._gauges)
            + list(self._histograms)
        )

    def row(self, cycle: int, reset_windows: bool = True) -> dict:
        """One flat sample row of every registered metric at ``cycle``."""
        row: dict = {"cycle": cycle}
        for name in sorted(self._counters):
            row[name] = self._counters[name].value
        for name in sorted(self._gauges):
            row[name] = self._gauges[name].value
        for name in sorted(self._histograms):
            row[name] = self._histograms[name].snapshot(reset=reset_windows)
        return row
