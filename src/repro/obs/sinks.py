"""Streaming trace and metric sinks.

The in-memory :class:`~repro.sim.tracing.TraceRecorder` is bounded by
its ``max_events`` RAM cap; these sinks stream events to disk instead,
so a trace is bounded only by the filesystem:

* :class:`JsonlTraceSink` — one JSON object per line per flit event;
  greppable, append-friendly, trivially parseable;
* :class:`ChromeTraceSink` — the Chrome trace-event format (a
  ``{"traceEvents": [...]}`` JSON document), loadable in Perfetto or
  ``chrome://tracing``: one simulated cycle maps to one microsecond of
  trace time and every NI/switch becomes a named thread track;
* :class:`JsonlMetricsSink` — one JSON object per metric sample row
  (written by the :class:`~repro.obs.probe.MetricsProbe`);
* :class:`TraceFanout` — duplicates the recorder interface over several
  sinks, so one simulation can feed the in-memory recorder, a JSONL
  stream, and a Chrome trace at once.

Every trace sink implements the recorder contract the simulator's
:meth:`~repro.sim.NocSimulator.enable_tracing` expects — ``record(cycle,
kind, location, flit)`` and ``record_note(cycle, kind, location, note)``
— so they are drop-in replacements for :class:`TraceRecorder`.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Callable, Deque, Dict, IO, List, Optional, Union


class _FileSink:
    """Shared open/close plumbing (context-manager friendly)."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[IO[str]] = self.path.open("w")
        self.events_written = 0

    @property
    def closed(self) -> bool:
        return self._fh is None

    def close(self) -> None:
        if self._fh is not None:
            self._finalize(self._fh)
            self._fh.close()
            self._fh = None

    def _finalize(self, fh: IO[str]) -> None:
        """Subclass hook: write any trailer before closing."""

    def _write(self, text: str) -> None:
        if self._fh is None:
            raise RuntimeError(f"sink {self.path} is closed")
        self._fh.write(text)

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class JsonlTraceSink(_FileSink):
    """One JSON line per flit event; unbounded, stream-parseable."""

    def record(self, cycle: int, kind, location: str, flit) -> None:
        packet = flit.packet
        self._write(
            json.dumps(
                {
                    "cycle": cycle,
                    "kind": kind.value,
                    "location": location,
                    "packet_id": packet.packet_id,
                    "flit_index": flit.index,
                    "source": packet.source,
                    "destination": packet.destination,
                },
                separators=(",", ":"),
            )
            + "\n"
        )
        self.events_written += 1

    def record_note(self, cycle: int, kind, location: str, note: str) -> None:
        self._write(
            json.dumps(
                {
                    "cycle": cycle,
                    "kind": kind.value,
                    "location": location,
                    "packet_id": -1,
                    "note": note,
                },
                separators=(",", ":"),
            )
            + "\n"
        )
        self.events_written += 1


class ChromeTraceSink(_FileSink):
    """Chrome trace-event JSON, loadable in Perfetto/chrome://tracing.

    Flit events become instant events (``"ph": "i"``) on per-location
    thread tracks; notes become global instant events.  Timestamps are
    cycles read as microseconds, so the Perfetto timeline reads directly
    in cycles.  The document is a complete, valid JSON object once
    :meth:`close` has written the trailer.
    """

    def __init__(self, path: Union[str, Path]):
        super().__init__(path)
        self._tids: Dict[str, int] = {}
        self._write('{"displayTimeUnit":"ms","traceEvents":[\n')
        self._write(
            json.dumps(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": 0,
                    "args": {"name": "noc-sim"},
                },
                separators=(",", ":"),
            )
        )

    def _tid(self, location: str) -> int:
        tid = self._tids.get(location)
        if tid is None:
            tid = len(self._tids) + 1  # tid 0 is the process metadata row
            self._tids[location] = tid
            self._emit(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": location},
                }
            )
        return tid

    def _emit(self, event: dict) -> None:
        self._write(",\n" + json.dumps(event, separators=(",", ":")))

    def record(self, cycle: int, kind, location: str, flit) -> None:
        packet = flit.packet
        tid = self._tid(location)
        self._emit(
            {
                "name": f"{kind.value} p{packet.packet_id}#{flit.index}",
                "cat": kind.value,
                "ph": "i",
                "s": "t",
                "ts": cycle,
                "pid": 0,
                "tid": tid,
                "args": {
                    "packet_id": packet.packet_id,
                    "flit_index": flit.index,
                    "source": packet.source,
                    "destination": packet.destination,
                },
            }
        )
        self.events_written += 1

    def record_note(self, cycle: int, kind, location: str, note: str) -> None:
        self._emit(
            {
                "name": f"{kind.value}: {note}",
                "cat": kind.value,
                "ph": "i",
                "s": "g",
                "ts": cycle,
                "pid": 0,
                "tid": self._tid(location),
                "args": {"note": note},
            }
        )
        self.events_written += 1

    def _finalize(self, fh: IO[str]) -> None:
        fh.write("\n]}\n")


class JsonlMetricsSink(_FileSink):
    """One JSON line per metric sample row (probe output)."""

    def emit(self, row: dict) -> None:
        self._write(json.dumps(row, separators=(",", ":")) + "\n")
        self.events_written += 1


class QueueSink:
    """Bounded in-memory sink for live consumers (no filesystem).

    Where the file sinks stream to disk, ``QueueSink`` streams to a
    *reader*: every metric row (``emit``, the metrics-sink contract) and
    flit/trace event (``record``/``record_note``, the recorder contract)
    is normalized into one plain-dict **frame** tagged with a ``type``
    (``"metrics"`` or ``"trace"``) and either

    * handed synchronously to a ``forward`` callable (how
      :mod:`repro.serve` relays frames out of worker processes), or
    * buffered in a bounded deque for :meth:`drain` — oldest frames are
      dropped on overflow (``frames_dropped`` counts them), so a slow
      consumer can never grow the simulation's memory unboundedly.

    Implements both sink contracts at once, so one instance can ride a
    :class:`TraceFanout` *and* serve as a
    :meth:`~repro.sim.NocSimulator.enable_metrics` sink.  Thread-safe:
    the simulator may run in a worker thread while a server thread
    drains.
    """

    def __init__(
        self,
        maxlen: int = 4096,
        forward: Optional[Callable[[dict], None]] = None,
    ):
        if maxlen < 1:
            raise ValueError("queue sink needs room for at least one frame")
        self.forward = forward
        self.events_written = 0
        self.frames_dropped = 0
        self._frames: Deque[dict] = deque()
        self._maxlen = maxlen
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _push(self, frame: dict) -> None:
        if self.forward is not None:
            self.forward(frame)
            self.events_written += 1
            return
        with self._lock:
            if len(self._frames) >= self._maxlen:
                self._frames.popleft()
                self.frames_dropped += 1
            self._frames.append(frame)
            self.events_written += 1

    # ------------------------------------------------------------------
    # Metrics-sink contract (MetricsProbe)
    # ------------------------------------------------------------------
    def emit(self, row: dict) -> None:
        frame = {"type": "metrics"}
        frame.update(row)
        self._push(frame)

    # ------------------------------------------------------------------
    # Recorder contract (NocSimulator.enable_tracing)
    # ------------------------------------------------------------------
    def record(self, cycle: int, kind, location: str, flit) -> None:
        packet = flit.packet
        self._push(
            {
                "type": "trace",
                "cycle": cycle,
                "kind": kind.value,
                "location": location,
                "packet_id": packet.packet_id,
                "flit_index": flit.index,
                "source": packet.source,
                "destination": packet.destination,
            }
        )

    def record_note(self, cycle: int, kind, location: str, note: str) -> None:
        self._push(
            {
                "type": "trace",
                "cycle": cycle,
                "kind": kind.value,
                "location": location,
                "packet_id": -1,
                "note": note,
            }
        )

    # ------------------------------------------------------------------
    def drain(self) -> List[dict]:
        """Remove and return every buffered frame (oldest first)."""
        with self._lock:
            frames = list(self._frames)
            self._frames.clear()
        return frames

    def __len__(self) -> int:
        with self._lock:
            return len(self._frames)

    def close(self) -> None:
        """Part of the sink contract; nothing to release."""


class TraceFanout:
    """Duplicate trace events over several sinks/recorders.

    Implements the same recorder contract, so the simulator needs no
    multi-sink awareness: ``sim.enable_tracing(TraceFanout(a, b, c))``.
    """

    def __init__(self, *sinks):
        if not sinks:
            raise ValueError("fanout needs at least one sink")
        self.sinks = list(sinks)

    def record(self, cycle: int, kind, location: str, flit) -> None:
        for sink in self.sinks:
            sink.record(cycle, kind, location, flit)

    def record_note(self, cycle: int, kind, location: str, note: str) -> None:
        for sink in self.sinks:
            sink.record_note(cycle, kind, location, note)

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()
