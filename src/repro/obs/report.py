"""Bottleneck attribution: from raw counters to "what is slow and why".

Reductions over a finished (or paused) simulation:

* :func:`bottleneck_report` — ranks links by measured busy cycles
  (``Link.flits_carried``: a link moves at most one flit per cycle, so
  the lifetime carry count *is* the busy-cycle count), ranks switches by
  contention/stall pressure, and attributes each hot link's load to the
  flows whose routes cross it;
* :func:`congestion_csv` — per-link busy cycles and utilization as CSV,
  for spreadsheets and plotting;
* :func:`congestion_heatmap` — ASCII mesh heat map of link busy cycles
  (reuses :func:`repro.report.mesh_heatmap`; non-mesh topologies degrade
  to a note rather than an error).

Flow attribution uses delivered-packet statistics plus the routing
table: a flow ``(src, dst)`` contributes its delivered flits to every
link on its route.  Packets still in flight (or injected during warmup)
are not counted — attribution explains measured load, it does not
predict it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class HotLink:
    """One link in the busy-cycle ranking."""

    link: str
    busy_cycles: int
    utilization: float
    peak_interval_utilization: Optional[float]
    flows: List[dict] = field(default_factory=list)


@dataclass
class BottleneckReport:
    """The full attribution bundle; ``to_text()`` renders it."""

    cycles: int
    total_flits_carried: int
    hot_links: List[HotLink]
    switch_ranking: List[dict]
    heatmap: str
    csv: str

    @property
    def top_link(self) -> Optional[HotLink]:
        return self.hot_links[0] if self.hot_links else None

    def to_text(self) -> str:
        lines = [
            f"Bottleneck report ({self.cycles} cycles, "
            f"{self.total_flits_carried} link-flit transfers)",
            "",
            f"Top {len(self.hot_links)} hot links (by measured busy cycles):",
        ]
        if not self.hot_links:
            lines.append("  (no link carried traffic)")
        for rank, hot in enumerate(self.hot_links, start=1):
            peak = (
                f", peak interval {hot.peak_interval_utilization:.2f}"
                if hot.peak_interval_utilization is not None
                else ""
            )
            lines.append(
                f"  {rank}. {hot.link:<16} busy {hot.busy_cycles:>7} "
                f"({hot.utilization:6.1%}{peak})"
            )
            for flow in hot.flows:
                lines.append(
                    f"       <- {flow['source']} -> {flow['destination']}: "
                    f"{flow['flits']} flits ({flow['share']:.0%})"
                )
        lines.append("")
        lines.append("Most contended switches:")
        if not self.switch_ranking:
            lines.append("  (no switch contention observed)")
        for entry in self.switch_ranking:
            lines.append(
                f"  {entry['switch']:<10} contention {entry['contention_cycles']:>6}  "
                f"stalls {entry['stall_cycles']:>6}  "
                f"peak buffer {entry['peak_buffer_occupancy']:>3}"
            )
        if self.heatmap:
            lines.append("")
            lines.append("Link busy-cycle heat map (0-9 scaled to max):")
            lines.append(self.heatmap)
        return "\n".join(lines)


def _flow_flits(sim) -> Dict[Tuple[str, str], int]:
    """Delivered flits per (source, destination) flow."""
    flows: Dict[Tuple[str, str], int] = {}
    for record in sim.stats.records:
        key = (record.source, record.destination)
        flows[key] = flows.get(key, 0) + record.size_flits
    return flows


def _flows_by_link(sim) -> Dict[Tuple[str, str], List[Tuple[str, str, int]]]:
    """Map each link key to the flows routed across it (with flit totals)."""
    by_link: Dict[Tuple[str, str], List[Tuple[str, str, int]]] = {}
    for (src, dst), flits in sorted(_flow_flits(sim).items()):
        if not sim.routing_table.has_route(src, dst):
            continue  # route was severed after delivery (fault recovery)
        path = sim.routing_table.route(src, dst).path
        for hop in zip(path, path[1:]):
            by_link.setdefault(hop, []).append((src, dst, flits))
    return by_link


def bottleneck_report(
    sim, probe=None, top: int = 5, flows_per_link: int = 3
) -> BottleneckReport:
    """Rank links and switches by measured pressure; attribute to flows.

    ``probe`` is optional: with one attached, hot links also report their
    peak single-interval utilization (a burstiness signal the lifetime
    average hides).
    """
    cycles = max(1, sim.cycle)
    busy = {key: sim.links[key].flits_carried for key in sim._link_order}
    ranked = sorted(busy.items(), key=lambda kv: (-kv[1], kv[0]))
    flows_map = _flows_by_link(sim)
    peaks = probe.peak_interval_utilization if probe is not None else None

    hot_links: List[HotLink] = []
    for key, busy_cycles in ranked[:top]:
        if busy_cycles == 0:
            break
        link = sim.links[key]
        crossing = sorted(
            flows_map.get(key, ()), key=lambda f: (-f[2], f[0], f[1])
        )
        total_crossing = sum(f[2] for f in crossing) or 1
        hot_links.append(
            HotLink(
                link=link.name,
                busy_cycles=busy_cycles,
                utilization=busy_cycles / cycles,
                peak_interval_utilization=(
                    peaks.get(key) if peaks is not None else None
                ),
                flows=[
                    {
                        "source": src,
                        "destination": dst,
                        "flits": flits,
                        "share": flits / total_crossing,
                    }
                    for src, dst, flits in crossing[:flows_per_link]
                ],
            )
        )

    switch_ranking = sorted(
        (
            {
                "switch": name,
                "contention_cycles": sim.switches[name].contention_cycles,
                "stall_cycles": sim.switches[name].stall_cycles,
                "peak_buffer_occupancy": max(
                    (
                        p.peak_occupancy
                        for p in sim.switches[name].inputs.values()
                    ),
                    default=0,
                ),
            }
            for name in sim._switch_order
        ),
        key=lambda e: (
            -e["contention_cycles"],
            -e["stall_cycles"],
            e["switch"],
        ),
    )
    switch_ranking = [
        e
        for e in switch_ranking[:top]
        if e["contention_cycles"] or e["stall_cycles"]
    ]

    return BottleneckReport(
        cycles=sim.cycle,
        total_flits_carried=sum(busy.values()),
        hot_links=hot_links,
        switch_ranking=switch_ranking,
        heatmap=congestion_heatmap(sim),
        csv=congestion_csv(sim),
    )


def congestion_csv(sim) -> str:
    """Per-link busy cycles and lifetime utilization, as CSV text."""
    cycles = max(1, sim.cycle)
    lines = ["link,src,dst,busy_cycles,utilization"]
    for key in sim._link_order:
        link = sim.links[key]
        lines.append(
            f"{link.name},{key[0]},{key[1]},{link.flits_carried},"
            f"{link.flits_carried / cycles:.6f}"
        )
    return "\n".join(lines) + "\n"


def congestion_heatmap(sim) -> str:
    """ASCII heat map of link busy cycles (mesh topologies only).

    Non-mesh topologies (no x/y switch coordinates) return an empty
    string so callers can print conditionally instead of catching.
    """
    from repro.report import mesh_heatmap

    busy = {
        key: float(sim.links[key].flits_carried) for key in sim._link_order
    }
    try:
        return mesh_heatmap(sim.topology, busy)
    except ValueError:
        return ""
