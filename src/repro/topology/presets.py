"""Named standard-topology instances: one string in, a runnable NoC out.

The CLI ``simulate`` path and the lab's declarative job specs both need
to conjure a ready-to-simulate (topology, routing, VC assignment)
triple from plain data — a kind name and a size — because job
parameters must survive JSON serialization and pickling across worker
processes.  This module is that single registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.topology.fattree import fat_tree
from repro.topology.graph import RoutingTable, Topology
from repro.topology.mesh import mesh, torus
from repro.topology.ring import spidergon
from repro.topology.routing import (
    dateline_vc_assignment,
    fat_tree_routing,
    spidergon_routing,
    torus_xy_routing,
    xy_routing,
)

STANDARD_KINDS = ("mesh", "torus", "spidergon", "fattree")


@dataclass
class TopologyInstance:
    """A simulation-ready standard topology."""

    kind: str
    size: int
    topology: Topology
    table: RoutingTable
    vc_assignment: Optional[Dict[Tuple[str, str], List[int]]]
    min_vcs: int


def standard_instance(kind: str, size: int) -> TopologyInstance:
    """Build a standard topology with its deadlock-free routing.

    ``size`` is the mesh/torus side, the spidergon node count, or the
    fat-tree level count — the same convention as ``repro simulate``.
    """
    if kind == "mesh":
        topo = mesh(size, size)
        return TopologyInstance(kind, size, topo, xy_routing(topo), None, 1)
    if kind == "torus":
        topo = torus(size, size)
        table = torus_xy_routing(topo, size, size)
        return TopologyInstance(
            kind, size, topo, table, dateline_vc_assignment(topo, table), 2
        )
    if kind == "spidergon":
        topo = spidergon(size)
        table = spidergon_routing(topo)
        return TopologyInstance(
            kind, size, topo, table, dateline_vc_assignment(topo, table), 2
        )
    if kind == "fattree":
        topo = fat_tree(2, size)
        return TopologyInstance(
            kind, size, topo, fat_tree_routing(topo), None, 1
        )
    raise ValueError(
        f"unknown topology {kind!r}; choose from {STANDARD_KINDS}"
    )
