"""Random irregular topologies.

"SoCs ... are usually heterogeneous in nature" (Section 2): real
designs are neither meshes nor trees.  This generator produces random
connected switch fabrics with configurable degree — the stress input
for up*/down* routing, deadlock analysis, and fault-recovery testing.
Deterministic under the seed.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.topology.graph import Topology


def random_irregular(
    num_switches: int,
    num_cores: int,
    extra_links: int = 0,
    seed: int = 1,
    flit_width: int = 32,
    max_link_mm: float = 4.0,
    name: Optional[str] = None,
) -> Topology:
    """A random connected fabric.

    Construction: a random spanning tree over the switches (guarantees
    connectivity), plus ``extra_links`` random chords (creates the
    cycles that make irregular routing interesting), plus cores assigned
    to switches round-robin over a random order.  Link lengths are
    uniform in (0.2, ``max_link_mm``).
    """
    if num_switches < 1:
        raise ValueError("need at least one switch")
    if num_cores < 2:
        raise ValueError("need at least two cores")
    if extra_links < 0:
        raise ValueError("extra links must be non-negative")
    max_chords = num_switches * (num_switches - 1) // 2 - (num_switches - 1)
    if extra_links > max_chords:
        raise ValueError(
            f"at most {max_chords} chords possible on {num_switches} switches"
        )
    rng = random.Random(seed)
    topo = Topology(name or f"irregular{num_switches}s{num_cores}c_{seed}",
                    flit_width=flit_width)

    switches = [f"sw{i}" for i in range(num_switches)]
    for sw in switches:
        topo.add_switch(sw)

    # Random spanning tree: attach each new switch to a random placed one.
    order = switches[:]
    rng.shuffle(order)
    for i, sw in enumerate(order[1:], start=1):
        other = order[rng.randrange(i)]
        topo.add_link(sw, other, length_mm=round(rng.uniform(0.2, max_link_mm), 3))

    # Random chords.
    added = 0
    attempts = 0
    while added < extra_links and attempts < 50 * (extra_links + 1):
        attempts += 1
        a, b = rng.sample(switches, 2)
        if topo.has_link(a, b):
            continue
        topo.add_link(a, b, length_mm=round(rng.uniform(0.2, max_link_mm), 3))
        added += 1

    # Cores round-robin over a shuffled switch order.
    host_order = switches[:]
    rng.shuffle(host_order)
    for c in range(num_cores):
        core = f"c{c}"
        topo.add_core(core)
        topo.add_link(core, host_order[c % num_switches], length_mm=0.3)
    return topo
