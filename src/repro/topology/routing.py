"""Design-time routing: the paths loaded into the NI LUTs.

xpipes uses source routing — "NI Look-Up Tables (LUTs) specify the path
that packets will follow in the network to reach their destination"
(Section 3) — so routes are computed here, at design time, and stored in
a :class:`repro.topology.graph.RoutingTable`.

Deterministic algorithms provided:

* dimension-ordered XY / YX on meshes;
* the turn models (west-first, north-last, negative-first) and odd-even,
  implemented over a shared turn-constrained BFS;
* up*/down* for arbitrary (custom/irregular) topologies;
* least-common-ancestor routing on k-ary n-trees (SPIN);
* Across-First on Spidergon;
* plain weighted shortest path (no deadlock guarantee — pair with the
  checker in :mod:`repro.topology.deadlock`).

Ring-based schemes (torus, spidergon) need two virtual channels with a
dateline; :func:`dateline_vc_assignment` computes the per-hop VC indices
the simulator and the deadlock checker consume.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.topology.graph import NodeKind, Route, RoutingTable, Topology

Direction = str  # "E", "W", "N", "S"
_DIRECTION_ORDER = ("E", "N", "S", "W")  # deterministic tie-break priority


# ----------------------------------------------------------------------
# Generic helpers
# ----------------------------------------------------------------------
def _core_pairs(topo: Topology) -> Iterable[Tuple[str, str]]:
    cores = topo.cores
    for src in cores:
        for dst in cores:
            if src != dst:
                yield src, dst


def _single_attachment(topo: Topology, core: str) -> str:
    switches = topo.attached_switches(core)
    if len(switches) != 1:
        raise ValueError(
            f"core {core!r} attaches to {len(switches)} switches; "
            "this routing algorithm requires exactly one"
        )
    return switches[0]


def route_all(
    topo: Topology,
    switch_path_fn: Callable[[str, str], List[str]],
    pairs: Optional[Iterable[Tuple[str, str]]] = None,
) -> RoutingTable:
    """Build a full routing table from a switch-level path function.

    ``switch_path_fn(src_switch, dst_switch)`` returns the switch node
    path (inclusive).  A core attached to several switches (e.g. a
    dual-port SRAM) routes via whichever attachment gives the shortest
    switch path (ties broken by switch name).
    """
    table = RoutingTable(topo)
    for src, dst in pairs if pairs is not None else _core_pairs(topo):
        candidates = []
        for s_sw in sorted(sw for sw in topo.attached_switches(src)
                           if topo.has_link(src, sw)):
            for d_sw in sorted(sw for sw in topo.attached_switches(dst)
                               if topo.has_link(sw, dst)):
                if s_sw == d_sw:
                    switch_path = [s_sw]
                else:
                    switch_path = switch_path_fn(s_sw, d_sw)
                    if (
                        not switch_path
                        or switch_path[0] != s_sw
                        or switch_path[-1] != d_sw
                    ):
                        raise ValueError(
                            f"path function returned invalid path "
                            f"{switch_path!r} for {s_sw!r}->{d_sw!r}"
                        )
                candidates.append((len(switch_path), s_sw, d_sw, switch_path))
        if not candidates:
            raise ValueError(f"cores {src!r}/{dst!r} have no usable attachments")
        switch_path = min(candidates)[3]
        table.set_route(Route(tuple([src, *switch_path, dst])))
    return table


# ----------------------------------------------------------------------
# Mesh coordinate machinery
# ----------------------------------------------------------------------
def _coords(topo: Topology, switch: str) -> Tuple[int, int]:
    attrs = topo.node_attrs(switch)
    if "x" not in attrs or "y" not in attrs:
        raise ValueError(f"switch {switch!r} lacks x/y mesh coordinates")
    return attrs["x"], attrs["y"]


def _mesh_direction(topo: Topology, a: str, b: str) -> Direction:
    ax, ay = _coords(topo, a)
    bx, by = _coords(topo, b)
    if bx == ax + 1 and by == ay:
        return "E"
    if bx == ax - 1 and by == ay:
        return "W"
    if by == ay + 1 and bx == ax:
        return "N"
    if by == ay - 1 and bx == ax:
        return "S"
    raise ValueError(f"{a!r}->{b!r} is not a unit mesh hop")


def _mesh_neighbors(topo: Topology, switch: str) -> List[Tuple[Direction, str]]:
    out = []
    for nxt in topo.successors(switch):
        if topo.kind(nxt) is not NodeKind.SWITCH:
            continue
        try:
            direction = _mesh_direction(topo, switch, nxt)
        except ValueError:
            continue  # wraparound links are handled by torus routing only
        out.append((direction, nxt))
    out.sort(key=lambda item: _DIRECTION_ORDER.index(item[0]))
    return out


# ----------------------------------------------------------------------
# Dimension-ordered routing
# ----------------------------------------------------------------------
def _xy_switch_path(topo: Topology, src: str, dst: str, x_first: bool) -> List[str]:
    sx, sy = _coords(topo, src)
    dx, dy = _coords(topo, dst)
    path = [src]
    x, y = sx, sy

    def step_x():
        nonlocal x
        while x != dx:
            x += 1 if dx > x else -1
            path.append(_switch_at(topo, x, y))

    def step_y():
        nonlocal y
        while y != dy:
            y += 1 if dy > y else -1
            path.append(_switch_at(topo, x, y))

    if x_first:
        step_x()
        step_y()
    else:
        step_y()
        step_x()
    return path


def _switch_at(topo: Topology, x: int, y: int) -> str:
    cache = getattr(topo, "_switch_at_cache", None)
    if cache is None:
        cache = {}
        for sw in topo.switches:
            attrs = topo.node_attrs(sw)
            if "x" in attrs and "y" in attrs:
                cache[(attrs["x"], attrs["y"])] = sw
        topo._switch_at_cache = cache
    try:
        return cache[(x, y)]
    except KeyError:
        raise ValueError(f"no switch at mesh position ({x}, {y})") from None


def xy_routing(topo: Topology) -> RoutingTable:
    """Dimension-ordered X-then-Y routing (deadlock-free on meshes)."""
    return route_all(topo, lambda s, d: _xy_switch_path(topo, s, d, x_first=True))


def yx_routing(topo: Topology) -> RoutingTable:
    """Dimension-ordered Y-then-X routing (deadlock-free on meshes)."""
    return route_all(topo, lambda s, d: _xy_switch_path(topo, s, d, x_first=False))


# ----------------------------------------------------------------------
# Turn-model routing (west-first, north-last, negative-first, odd-even)
# ----------------------------------------------------------------------
def _prohibited_turns_for(model: str) -> Callable[[Tuple[int, int], Direction, Direction], bool]:
    """Return allowed(node_coords, dir_in, dir_out) for a named model."""
    static: Dict[str, Set[Tuple[Direction, Direction]]] = {
        # Glass & Ni turn models: each prohibits two of the eight turns.
        "west-first": {("N", "W"), ("S", "W")},
        "north-last": {("N", "E"), ("N", "W")},
        "negative-first": {("N", "W"), ("E", "S")},
    }
    opposite = {"E": "W", "W": "E", "N": "S", "S": "N"}

    if model in static:
        banned = static[model]

        def allowed(coords: Tuple[int, int], d_in: Direction, d_out: Direction) -> bool:
            if d_out == opposite[d_in]:
                return False  # no U-turns
            return (d_in, d_out) not in banned

        return allowed

    if model == "odd-even":
        # Chiu's odd-even rules, keyed on column (x) parity:
        #   even column: EN and ES turns prohibited;
        #   odd column:  NW and SW turns prohibited.
        def allowed(coords: Tuple[int, int], d_in: Direction, d_out: Direction) -> bool:
            if d_out == opposite[d_in]:
                return False
            x = coords[0]
            if x % 2 == 0 and d_in == "E" and d_out in ("N", "S"):
                return False
            if x % 2 == 1 and d_in in ("N", "S") and d_out == "W":
                return False
            return True

        return allowed

    raise ValueError(
        f"unknown turn model {model!r}; "
        "choose west-first, north-last, negative-first or odd-even"
    )


def _turn_constrained_path(
    topo: Topology,
    src: str,
    dst: str,
    allowed: Callable[[Tuple[int, int], Direction, Direction], bool],
) -> List[str]:
    """Shortest mesh path obeying a turn predicate (deterministic BFS)."""
    start = (src, None)  # (switch, incoming direction)
    parents: Dict[Tuple[str, Optional[Direction]], Tuple[str, Optional[Direction]]] = {}
    seen = {start}
    queue = deque([start])
    goal: Optional[Tuple[str, Optional[Direction]]] = None
    while queue:
        node, d_in = queue.popleft()
        if node == dst:
            goal = (node, d_in)
            break
        for d_out, nxt in _mesh_neighbors(topo, node):
            if d_in is not None and not allowed(_coords(topo, node), d_in, d_out):
                continue
            state = (nxt, d_out)
            if state in seen:
                continue
            seen.add(state)
            parents[state] = (node, d_in)
            queue.append(state)
    if goal is None:
        raise ValueError(f"no turn-legal path {src!r}->{dst!r}")
    path = [goal[0]]
    state = goal
    while state != start:
        state = parents[state]
        path.append(state[0])
    path.reverse()
    return path


def turn_model_routing(topo: Topology, model: str = "west-first") -> RoutingTable:
    """Route a mesh under a named turn model (all deadlock-free)."""
    allowed = _prohibited_turns_for(model)
    return route_all(
        topo, lambda s, d: _turn_constrained_path(topo, s, d, allowed)
    )


def odd_even_routing(topo: Topology) -> RoutingTable:
    """Chiu's odd-even turn model on a mesh."""
    return turn_model_routing(topo, "odd-even")


# ----------------------------------------------------------------------
# Weighted shortest path (generic, no deadlock guarantee)
# ----------------------------------------------------------------------
def shortest_path_routing(
    topo: Topology, weight: Optional[str] = None
) -> RoutingTable:
    """Dijkstra over the whole node graph.

    ``weight`` may be ``"length"`` (sum of link lengths in mm) or None
    (hop count).  Handles multi-attached cores (BONE dual-port SRAMs)
    naturally.  Deadlock freedom is *not* guaranteed; run the
    channel-dependency check before using the table.
    """
    graph = topo.graph

    def w(u, v, d):
        base = d["attrs"].length_mm if weight == "length" else 1.0
        if weight == "length":
            base = base if base > 0 else 1e-3
        # Never route through an intermediate core.
        if topo.kind(v) is NodeKind.CORE:
            return None  # networkx: None hides the edge
        return base

    table = RoutingTable(topo)
    for src, dst in _core_pairs(topo):
        # Temporarily allow the destination core as an endpoint by
        # routing to each switch attached to it, then appending the core.
        best: Optional[List[str]] = None
        best_cost = float("inf")
        for d_sw in sorted(topo.attached_switches(dst)):
            try:
                cost, path = nx.single_source_dijkstra(graph, src, d_sw, weight=w)
            except nx.NetworkXNoPath:
                continue
            tail = topo.link_attrs(d_sw, dst).length_mm if weight == "length" else 1.0
            if not topo.has_link(d_sw, dst):
                continue
            if cost + tail < best_cost:
                best_cost = cost + tail
                best = path + [dst]
        if best is None:
            raise ValueError(f"no path {src!r}->{dst!r}")
        table.set_route(Route(tuple(best)))
    return table


# ----------------------------------------------------------------------
# up*/down* for irregular topologies
# ----------------------------------------------------------------------
def up_down_routing(topo: Topology, root: Optional[str] = None) -> RoutingTable:
    """Classic up*/down*: deadlock-free on any connected topology.

    A BFS tree from ``root`` (default: the highest-degree switch) levels
    the switches; every link is labelled *up* (toward lower level, ties
    broken by name) or *down*.  Legal routes climb zero or more up links
    then descend zero or more down links, which provably breaks all
    channel-dependency cycles.
    """
    switches = topo.switches
    if not switches:
        raise ValueError("topology has no switches")
    fabric = topo.switch_subgraph().to_undirected()
    if root is None:
        root = max(switches, key=lambda s: (fabric.degree(s), s))
    elif root not in switches:
        raise KeyError(f"root {root!r} is not a switch")
    level = {root: 0}
    order = deque([root])
    while order:
        node = order.popleft()
        for nxt in sorted(fabric.neighbors(node)):
            if nxt not in level:
                level[nxt] = level[node] + 1
                order.append(nxt)
    if len(level) != len(switches):
        raise ValueError("switch fabric is not connected")

    def is_up(a: str, b: str) -> bool:
        la, lb = level[a], level[b]
        if la != lb:
            return lb < la
        return b < a  # tie-break by name: toward smaller name is "up"

    # State graph: (switch, phase) with phase 0 = still ascending.
    def switch_path(src: str, dst: str) -> List[str]:
        start = (src, 0)
        parents: Dict[Tuple[str, int], Tuple[str, int]] = {}
        seen = {start}
        queue = deque([start])
        goal = None
        while queue:
            node, phase = queue.popleft()
            if node == dst:
                goal = (node, phase)
                break
            for nxt in sorted(
                n for n in topo.successors(node) if topo.kind(n) is NodeKind.SWITCH
            ):
                up = is_up(node, nxt)
                if phase == 1 and up:
                    continue  # once descending, never ascend again
                state = (nxt, 0 if up else 1)
                if state in seen:
                    continue
                seen.add(state)
                parents[state] = (node, phase)
                queue.append(state)
        if goal is None:
            raise ValueError(f"no up*/down* path {src!r}->{dst!r}")
        path = [goal[0]]
        state = goal
        while state != start:
            state = parents[state]
            path.append(state[0])
        path.reverse()
        return path

    return route_all(topo, switch_path)


# ----------------------------------------------------------------------
# Fat-tree (k-ary n-tree) LCA routing
# ----------------------------------------------------------------------
def fat_tree_routing(topo: Topology) -> RoutingTable:
    """Least-common-ancestor routing on a k-ary n-tree (deadlock-free).

    Ascend choosing at level ``l`` the up-neighbour whose digit ``l``
    already matches the destination, stop at the LCA level, then descend
    along the unique down path.
    """
    from repro.topology.fattree import switch_name

    def address(core: str) -> Tuple[int, ...]:
        attrs = topo.node_attrs(core)
        if "address" not in attrs:
            raise ValueError(f"core {core!r} lacks a fat-tree address")
        return attrs["address"]

    table = RoutingTable(topo)
    for src, dst in _core_pairs(topo):
        p, q = address(src), address(dst)
        n = len(p)
        prefix = p[: n - 1]
        q_prefix = q[: n - 1]
        if prefix == q_prefix:
            lca_level = 0
        else:
            lca_level = 1 + max(i for i in range(n - 1) if p[i] != q[i])
        # Ascend: at level l take the up-neighbour with digit l = q[l].
        w = list(prefix)
        path = [switch_name(0, tuple(w))]
        for l in range(lca_level):
            w[l] = q[l]
            path.append(switch_name(l + 1, tuple(w)))
        # Descend: digits already match q's prefix on the way down.
        for l in range(lca_level - 1, -1, -1):
            w[l] = q_prefix[l]
            path.append(switch_name(l, tuple(w)))
        table.set_route(Route(tuple([src, *path, dst])))
    return table


# ----------------------------------------------------------------------
# Spidergon Across-First
# ----------------------------------------------------------------------
def spidergon_routing(topo: Topology) -> RoutingTable:
    """Across-First: take the across link when the ring distance exceeds
    a quarter of the ring, then finish along the ring.

    Needs two virtual channels (dateline) for deadlock freedom; use
    :func:`dateline_vc_assignment` for the per-hop VC indices.
    """
    from repro.topology.ring import switch_name

    indices = {}
    for sw in topo.switches:
        attrs = topo.node_attrs(sw)
        if "index" not in attrs:
            raise ValueError(f"switch {sw!r} lacks a ring index")
        indices[sw] = attrs["index"]
    n = len(indices)
    half = n // 2

    def switch_path(src: str, dst: str) -> List[str]:
        i, j = indices[src], indices[dst]
        path = [src]
        cw = (j - i) % n
        ccw = (i - j) % n
        if min(cw, ccw) > n // 4 and topo.has_link(src, switch_name((i + half) % n)):
            i = (i + half) % n
            path.append(switch_name(i))
            cw = (j - i) % n
            ccw = (i - j) % n
        step = 1 if cw <= ccw else -1
        while i != j:
            i = (i + step) % n
            path.append(switch_name(i))
        return path

    return route_all(topo, switch_path)


# ----------------------------------------------------------------------
# Torus minimal dimension-ordered routing (with wraparound)
# ----------------------------------------------------------------------
def torus_xy_routing(topo: Topology, width: int, height: int) -> RoutingTable:
    """Minimal XY on a torus, using wrap links when shorter.

    Requires a dateline VC assignment (2 VCs) for deadlock freedom.
    """

    def switch_path(src: str, dst: str) -> List[str]:
        sx, sy = _coords(topo, src)
        dx, dy = _coords(topo, dst)
        path = [src]
        x, y = sx, sy
        step_x = _ring_step(sx, dx, width)
        while x != dx:
            x = (x + step_x) % width
            path.append(_switch_at(topo, x, y))
        step_y = _ring_step(sy, dy, height)
        while y != dy:
            y = (y + step_y) % height
            path.append(_switch_at(topo, x, y))
        return path

    return route_all(topo, switch_path)


def _ring_step(src: int, dst: int, size: int) -> int:
    forward = (dst - src) % size
    backward = (src - dst) % size
    return 1 if forward <= backward else -1


# ----------------------------------------------------------------------
# Dateline virtual-channel assignment
# ----------------------------------------------------------------------
def dateline_vc_assignment(
    topo: Topology,
    table: RoutingTable,
    index_of: Optional[Callable[[str], Optional[Tuple[int, ...]]]] = None,
) -> Dict[Tuple[str, str], List[int]]:
    """Per-hop VC indices: start in VC0, switch to VC1 at each dateline.

    The dateline of a ring dimension sits between the highest index and
    index 0; any hop that wraps (index decreases going "forward" or
    increases going "backward" by more than one) crosses it.  Works for
    rings, spidergons (ring part) and both torus dimensions.

    ``index_of`` maps a switch name to its position tuple; defaults to
    the ``index`` attribute (rings) or ``(x, y)`` (meshes/tori).

    The VC resets to 0 whenever the route changes travel dimension
    (dimension-ordered torus routing finishes one ring before entering
    the next, so each ring's dateline is independent).
    """

    def default_index(sw: str) -> Optional[Tuple[int, ...]]:
        attrs = topo.node_attrs(sw)
        if "index" in attrs:
            return (attrs["index"],)
        if "x" in attrs and "y" in attrs:
            return (attrs["x"], attrs["y"])
        return None

    get_index = index_of or default_index
    # Per-dimension maximum index, to recognize true wrap hops (0 <-> max)
    # and distinguish them from long chords such as Spidergon across links.
    max_index: List[int] = []
    for sw in topo.switches:
        idx = get_index(sw)
        if idx is None:
            continue
        if len(max_index) < len(idx):
            max_index.extend([0] * (len(idx) - len(max_index)))
        for i, v in enumerate(idx):
            max_index[i] = max(max_index[i], v)

    assignment: Dict[Tuple[str, str], List[int]] = {}
    for route in table:
        vcs: List[int] = []
        vc = 0
        current_dim: Optional[int] = None
        for src, dst in route.links():
            if (
                topo.kind(src) is NodeKind.SWITCH
                and topo.kind(dst) is NodeKind.SWITCH
            ):
                a, b = get_index(src), get_index(dst)
                if a is not None and b is not None:
                    dim = _travel_dimension(a, b)
                    if dim is not None and dim != current_dim:
                        vc = 0  # new ring: its dateline is independent
                        current_dim = dim
                    if dim is not None and _is_wrap_hop(a[dim], b[dim], max_index[dim]):
                        vc = 1
            vcs.append(vc)
        assignment[(route.source, route.destination)] = vcs
    return assignment


def _travel_dimension(a: Sequence[int], b: Sequence[int]) -> Optional[int]:
    """Index of the (single) coordinate that changes on this hop."""
    changed = [i for i, (x, y) in enumerate(zip(a, b)) if x != y]
    return changed[0] if len(changed) == 1 else None


def _is_wrap_hop(a: int, b: int, max_idx: int) -> bool:
    """True for the 0 <-> max transitions: the ring's dateline."""
    return (a == max_idx and b == 0) or (a == 0 and b == max_idx)
