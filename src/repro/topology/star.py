"""Star, crossbar and hierarchical-star topology generators.

The hierarchical star models the BONE chips (Fig. 5): RISC processors
and dual-port SRAM banks hang off crossbar switches ("the crossbars act
as a non-blocking medium to connect the RISC processors and the SRAMs"),
and the crossbars are joined through a hub — a "hierarchical star
topology" that the paper reports outperforming a conventional 2D-mesh
CMP for memory-centric traffic.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.topology.graph import Topology


def star(
    num_cores: int,
    flit_width: int = 32,
    spoke_length_mm: float = 1.0,
    name: Optional[str] = None,
) -> Topology:
    """Single central switch (a crossbar) with one core per port."""
    if num_cores < 2:
        raise ValueError("star needs at least 2 cores")
    topo = Topology(name or f"star{num_cores}", flit_width=flit_width)
    topo.add_switch("hub")
    for i in range(num_cores):
        cname = f"c_{i}"
        topo.add_core(cname, index=i)
        topo.add_link(cname, "hub", length_mm=spoke_length_mm)
    return topo


def hierarchical_star(
    clusters: Sequence[Sequence[str]],
    flit_width: int = 32,
    spoke_length_mm: float = 0.8,
    hub_length_mm: float = 2.0,
    name: Optional[str] = None,
) -> Topology:
    """Two-level star: cores grouped into clusters, one crossbar each,
    all crossbars joined through a central hub switch.

    ``clusters`` is a list of core-name lists.  Core names must be
    globally unique.
    """
    if len(clusters) < 1:
        raise ValueError("need at least one cluster")
    if any(len(c) == 0 for c in clusters):
        raise ValueError("clusters must be non-empty")
    total = sum(len(c) for c in clusters)
    if total < 2:
        raise ValueError("need at least 2 cores overall")
    topo = Topology(name or f"hstar{len(clusters)}", flit_width=flit_width)
    multi = len(clusters) > 1
    if multi:
        topo.add_switch("hub")
    for ci, cluster in enumerate(clusters):
        xbar = f"xbar_{ci}"
        topo.add_switch(xbar, cluster=ci)
        if multi:
            topo.add_link(xbar, "hub", length_mm=hub_length_mm)
        for cname in cluster:
            topo.add_core(cname, cluster=ci)
            topo.add_link(cname, xbar, length_mm=spoke_length_mm)
    return topo


def bone_style(
    num_processors: int = 10,
    num_memories: int = 8,
    processors_per_cluster: int = 5,
    flit_width: int = 32,
    name: Optional[str] = None,
) -> Topology:
    """The Fig. 5 BONE configuration.

    "The design consists of 8 dual port memories, crossbar switches and
    ten RISC processors.  They are connected in a hierarchical star
    topology."  Processors are split into clusters around crossbars;
    dual-port SRAMs attach to *two* crossbars (one per port), so a
    processor exchanges data with any SRAM through at most one hub hop
    and SRAM banks can be "assigned dynamically to the RISC processors".
    """
    if num_processors < 2:
        raise ValueError("need at least 2 processors")
    if num_memories < 1:
        raise ValueError("need at least 1 memory")
    if processors_per_cluster < 1:
        raise ValueError("processors_per_cluster must be >= 1")
    num_clusters = -(-num_processors // processors_per_cluster)  # ceil
    topo = Topology(name or "bone", flit_width=flit_width)
    multi = num_clusters > 1
    if multi:
        topo.add_switch("hub")
    for ci in range(num_clusters):
        topo.add_switch(f"xbar_{ci}", cluster=ci)
        if multi:
            topo.add_link(f"xbar_{ci}", "hub", length_mm=1.5)
    for p in range(num_processors):
        ci = p // processors_per_cluster
        pname = f"risc_{p}"
        topo.add_core(pname, cluster=ci, role="processor")
        topo.add_link(pname, f"xbar_{ci}", length_mm=0.6)
    for m in range(num_memories):
        mname = f"sram_{m}"
        # Dual-port SRAM: each port reaches a different crossbar.
        first = m % num_clusters
        second = (m + 1) % num_clusters
        topo.add_core(mname, role="memory")
        topo.add_link(mname, f"xbar_{first}", length_mm=0.6)
        if second != first:
            topo.add_link(mname, f"xbar_{second}", length_mm=0.6)
    return topo
