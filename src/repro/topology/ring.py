"""Ring and Spidergon topology generators.

Spidergon [22] (ST Microelectronics) is an even-size ring augmented with
"across" links connecting each node to the diametrically opposite one;
its routing scheme, Across-First, takes the cross link when the ring
distance exceeds a quarter of the ring.
"""

from __future__ import annotations

from typing import Optional

from repro.topology.graph import Topology


def switch_name(i: int) -> str:
    return f"s_{i}"


def core_name(i: int) -> str:
    return f"c_{i}"


def ring(
    num_nodes: int,
    flit_width: int = 32,
    hop_length_mm: float = 1.5,
    name: Optional[str] = None,
) -> Topology:
    """Bidirectional ring with one core per switch."""
    if num_nodes < 3:
        raise ValueError("ring needs at least 3 nodes")
    topo = Topology(name or f"ring{num_nodes}", flit_width=flit_width)
    for i in range(num_nodes):
        topo.add_switch(switch_name(i), index=i)
        topo.add_core(core_name(i), index=i)
        topo.add_link(core_name(i), switch_name(i), length_mm=hop_length_mm / 4)
    for i in range(num_nodes):
        topo.add_link(
            switch_name(i), switch_name((i + 1) % num_nodes), length_mm=hop_length_mm
        )
    return topo


def spidergon(
    num_nodes: int,
    flit_width: int = 32,
    hop_length_mm: float = 1.5,
    name: Optional[str] = None,
) -> Topology:
    """Spidergon: even ring plus across links to the antipodal node.

    The across link is modelled longer than a ring hop (it crosses the
    layout) but shorter than num_nodes/2 ring hops — the reason the
    topology wins on latency for medium-size SoCs.
    """
    if num_nodes < 4 or num_nodes % 2 != 0:
        raise ValueError("spidergon needs an even node count >= 4")
    topo = ring(num_nodes, flit_width, hop_length_mm, name=name or f"spidergon{num_nodes}")
    half = num_nodes // 2
    across_mm = hop_length_mm * max(2.0, num_nodes / 4.0)
    for i in range(half):
        topo.add_link(switch_name(i), switch_name(i + half), length_mm=across_mm)
    return topo
