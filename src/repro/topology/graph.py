"""Topology graph: switches, cores (via NIs) and unidirectional links.

The modular NoC architecture of Section 3 has three basic elements —
Network Interfaces, switches and links.  At the topology level we model
switches and cores as nodes (each core's NI is the attachment point) and
links as directed edges; a bidirectional connection is a pair of opposed
unidirectional links, matching the point-to-point wiring of Section 4.1.

Link attributes carry the physical annotations the tool flow needs:
length in mm (from the floorplan) and pipeline stage count (from the wire
model), so the same object serves synthesis, simulation and power
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx


class NodeKind(Enum):
    SWITCH = "switch"
    CORE = "core"


@dataclass
class LinkAttrs:
    """Physical annotations of one unidirectional link."""

    length_mm: float = 0.0
    pipeline_stages: int = 0
    width_bits: Optional[int] = None  # None = topology default

    def __post_init__(self) -> None:
        if self.length_mm < 0:
            raise ValueError("link length must be non-negative")
        if self.pipeline_stages < 0:
            raise ValueError("pipeline stages must be non-negative")
        if self.width_bits is not None and self.width_bits < 1:
            raise ValueError("link width must be >= 1 bit")

    @property
    def delay_cycles(self) -> int:
        """Cycles a flit spends on this link (1 + relay stations)."""
        return 1 + self.pipeline_stages


class Topology:
    """A NoC topology: named switches and cores, directed links.

    Parameters
    ----------
    name:
        Human-readable identifier (e.g. ``"mesh4x4"``).
    flit_width:
        Default link width in bits; individual links may override.
    """

    def __init__(self, name: str = "noc", flit_width: int = 32):
        if flit_width < 1:
            raise ValueError("flit width must be >= 1")
        self.name = name
        self.flit_width = flit_width
        self._graph = nx.DiGraph()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_switch(self, name: str, **attrs) -> None:
        self._add_node(name, NodeKind.SWITCH, **attrs)

    def add_core(self, name: str, **attrs) -> None:
        self._add_node(name, NodeKind.CORE, **attrs)

    def _add_node(self, name: str, kind: NodeKind, **attrs) -> None:
        if name in self._graph:
            raise ValueError(f"duplicate node {name!r}")
        self._graph.add_node(name, kind=kind, **attrs)

    def add_link(
        self,
        src: str,
        dst: str,
        length_mm: float = 0.0,
        pipeline_stages: int = 0,
        width_bits: Optional[int] = None,
        bidirectional: bool = True,
    ) -> None:
        """Add a link; by default also adds the opposing direction."""
        for node in (src, dst):
            if node not in self._graph:
                raise KeyError(f"unknown node {node!r}")
        if src == dst:
            raise ValueError(f"self-link on {src!r}")
        if self.kind(src) is NodeKind.CORE and self.kind(dst) is NodeKind.CORE:
            raise ValueError("cores cannot connect directly; route through a switch")
        if self._graph.has_edge(src, dst):
            raise ValueError(f"duplicate link {src!r}->{dst!r}")
        attrs = LinkAttrs(length_mm, pipeline_stages, width_bits)
        self._graph.add_edge(src, dst, attrs=attrs)
        if bidirectional:
            if self._graph.has_edge(dst, src):
                raise ValueError(f"duplicate link {dst!r}->{src!r}")
            self._graph.add_edge(
                dst, src, attrs=LinkAttrs(length_mm, pipeline_stages, width_bits)
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._graph

    def kind(self, name: str) -> NodeKind:
        try:
            return self._graph.nodes[name]["kind"]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    def node_attrs(self, name: str) -> dict:
        if name not in self._graph:
            raise KeyError(f"unknown node {name!r}")
        return dict(self._graph.nodes[name])

    @property
    def switches(self) -> List[str]:
        return [n for n, d in self._graph.nodes(data=True) if d["kind"] is NodeKind.SWITCH]

    @property
    def cores(self) -> List[str]:
        return [n for n, d in self._graph.nodes(data=True) if d["kind"] is NodeKind.CORE]

    @property
    def links(self) -> List[Tuple[str, str]]:
        return list(self._graph.edges())

    def link_attrs(self, src: str, dst: str) -> LinkAttrs:
        try:
            return self._graph.edges[src, dst]["attrs"]
        except KeyError:
            raise KeyError(f"no link {src!r}->{dst!r}") from None

    def has_link(self, src: str, dst: str) -> bool:
        return self._graph.has_edge(src, dst)

    def link_width(self, src: str, dst: str) -> int:
        attrs = self.link_attrs(src, dst)
        return attrs.width_bits if attrs.width_bits is not None else self.flit_width

    def successors(self, name: str) -> List[str]:
        if name not in self._graph:
            raise KeyError(f"unknown node {name!r}")
        return list(self._graph.successors(name))

    def predecessors(self, name: str) -> List[str]:
        if name not in self._graph:
            raise KeyError(f"unknown node {name!r}")
        return list(self._graph.predecessors(name))

    def radix(self, switch: str) -> Tuple[int, int]:
        """(input ports, output ports) of a switch, cores included."""
        if self.kind(switch) is not NodeKind.SWITCH:
            raise ValueError(f"{switch!r} is not a switch")
        return (self._graph.in_degree(switch), self._graph.out_degree(switch))

    def attached_switches(self, core: str) -> List[str]:
        """Switches this core's NI connects to."""
        if self.kind(core) is not NodeKind.CORE:
            raise ValueError(f"{core!r} is not a core")
        out = set(self._graph.successors(core)) | set(self._graph.predecessors(core))
        return sorted(out)

    def switch_subgraph(self) -> nx.DiGraph:
        """The switch-to-switch fabric (cores stripped)."""
        return self._graph.subgraph(self.switches).copy()

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying directed graph (treat as read-only)."""
        return self._graph

    def is_connected(self) -> bool:
        """Every core can reach every other core."""
        cores = self.cores
        if len(cores) < 2:
            return True
        for src in cores:
            reachable = nx.descendants(self._graph, src)
            if not all(dst in reachable for dst in cores if dst != src):
                return False
        return True

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Structural design rules: raise ValueError on violation."""
        problems: List[str] = []
        for core in self.cores:
            succ = list(self._graph.successors(core))
            pred = list(self._graph.predecessors(core))
            if not succ and not pred:
                problems.append(f"core {core!r} is unconnected")
        for switch in self.switches:
            in_deg = self._graph.in_degree(switch)
            out_deg = self._graph.out_degree(switch)
            if in_deg == 0 or out_deg == 0:
                problems.append(f"switch {switch!r} lacks input or output links")
        if not self.is_connected():
            problems.append("topology does not connect all core pairs")
        if problems:
            raise ValueError("; ".join(problems))

    def __repr__(self) -> str:
        return (
            f"Topology({self.name!r}, switches={len(self.switches)}, "
            f"cores={len(self.cores)}, links={len(self.links)})"
        )


@dataclass
class Route:
    """One source route: the full node path core -> switches -> core."""

    path: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise ValueError("route needs at least source and destination")

    @property
    def source(self) -> str:
        return self.path[0]

    @property
    def destination(self) -> str:
        return self.path[-1]

    @property
    def hops(self) -> int:
        """Number of links traversed (including NI links)."""
        return len(self.path) - 1

    @property
    def num_switches(self) -> int:
        """Number of switches traversed."""
        return max(0, len(self.path) - 2)

    @property
    def switch_hops(self) -> int:
        """Number of switch-to-switch links traversed."""
        return max(0, len(self.path) - 3)

    def links(self) -> List[Tuple[str, str]]:
        return list(zip(self.path, self.path[1:]))


class RoutingTable:
    """Source-routing table: (src core, dst core) -> Route.

    This is the design-time artifact stored in the NI Look-Up Tables
    ("NI LUTs specify the path that packets will follow in the network to
    reach their destination (source routing)", Section 3).
    """

    def __init__(self, topology: Topology):
        self.topology = topology
        self._routes: Dict[Tuple[str, str], Route] = {}

    def set_route(self, route: Route) -> None:
        topo = self.topology
        for node in route.path:
            if node not in topo:
                raise KeyError(f"route references unknown node {node!r}")
        if topo.kind(route.source) is not NodeKind.CORE:
            raise ValueError(f"route source {route.source!r} is not a core")
        if topo.kind(route.destination) is not NodeKind.CORE:
            raise ValueError(f"route destination {route.destination!r} is not a core")
        for src, dst in route.links():
            if not topo.has_link(src, dst):
                raise ValueError(f"route uses missing link {src!r}->{dst!r}")
        for mid in route.path[1:-1]:
            if topo.kind(mid) is not NodeKind.SWITCH:
                raise ValueError(f"route transits non-switch node {mid!r}")
        self._routes[(route.source, route.destination)] = route

    def route(self, src: str, dst: str) -> Route:
        try:
            return self._routes[(src, dst)]
        except KeyError:
            raise KeyError(f"no route {src!r} -> {dst!r}") from None

    def has_route(self, src: str, dst: str) -> bool:
        return (src, dst) in self._routes

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[Route]:
        return iter(self._routes.values())

    def pairs(self) -> List[Tuple[str, str]]:
        return list(self._routes)

    def link_loads(self, flow_rates: Optional[Dict[Tuple[str, str], float]] = None
                   ) -> Dict[Tuple[str, str], float]:
        """Aggregate load per link.

        Without ``flow_rates``, each route counts 1.0; with rates (e.g.
        bandwidth in bits/s per (src, dst)), loads are weighted — the
        quantity synthesis compares against link capacity.
        """
        loads: Dict[Tuple[str, str], float] = {}
        for (src, dst), route in self._routes.items():
            weight = 1.0 if flow_rates is None else flow_rates.get((src, dst), 0.0)
            for link in route.links():
                loads[link] = loads.get(link, 0.0) + weight
        return loads
