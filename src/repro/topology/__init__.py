"""Topologies: graph model, generators, routing, deadlock analysis."""

from repro.topology.graph import (
    LinkAttrs,
    NodeKind,
    Route,
    RoutingTable,
    Topology,
)
from repro.topology.mesh import mesh, quasi_mesh, torus
from repro.topology.ring import ring, spidergon
from repro.topology.star import bone_style, hierarchical_star, star
from repro.topology.fattree import fat_tree
from repro.topology.irregular import random_irregular
from repro.topology.serialize import (
    load_design,
    routing_table_from_dict,
    routing_table_to_dict,
    save_design,
    topology_from_dict,
    topology_to_dict,
)
from repro.topology.routing import (
    dateline_vc_assignment,
    fat_tree_routing,
    odd_even_routing,
    route_all,
    shortest_path_routing,
    spidergon_routing,
    torus_xy_routing,
    turn_model_routing,
    up_down_routing,
    xy_routing,
    yx_routing,
)
from repro.topology.deadlock import (
    DeadlockReport,
    MessageClassReport,
    channel_dependency_graph,
    check_message_dependent_deadlock,
    check_routing_deadlock,
    minimum_vcs_required,
)

__all__ = [
    "LinkAttrs",
    "NodeKind",
    "Route",
    "RoutingTable",
    "Topology",
    "mesh",
    "quasi_mesh",
    "torus",
    "ring",
    "spidergon",
    "star",
    "hierarchical_star",
    "bone_style",
    "fat_tree",
    "random_irregular",
    "load_design",
    "routing_table_from_dict",
    "routing_table_to_dict",
    "save_design",
    "topology_from_dict",
    "topology_to_dict",
    "xy_routing",
    "yx_routing",
    "turn_model_routing",
    "odd_even_routing",
    "shortest_path_routing",
    "up_down_routing",
    "fat_tree_routing",
    "spidergon_routing",
    "torus_xy_routing",
    "route_all",
    "dateline_vc_assignment",
    "channel_dependency_graph",
    "check_routing_deadlock",
    "check_message_dependent_deadlock",
    "minimum_vcs_required",
    "DeadlockReport",
    "MessageClassReport",
]
