"""Mesh-family topology generators: 2D mesh, torus, quasi-mesh.

The 2D mesh is the workhorse of CMP NoCs in the paper's case studies
(Intel Teraflops, Tilera TILE-Gx, RAW); the quasi-mesh variant — "some
routers connect more than one core" — models the FAUST demonstrator.
Switch nodes carry ``x``/``y`` grid attributes consumed by the
dimension-ordered and turn-model routing functions.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.topology.graph import Topology


def switch_name(x: int, y: int) -> str:
    return f"s_{x}_{y}"


def core_name(x: int, y: int, index: int = 0) -> str:
    return f"c_{x}_{y}" if index == 0 else f"c_{x}_{y}_{index}"


def mesh(
    width: int,
    height: int,
    flit_width: int = 32,
    tile_pitch_mm: float = 1.5,
    cores_per_switch: int = 1,
    name: Optional[str] = None,
) -> Topology:
    """Build a ``width`` x ``height`` 2D mesh.

    One switch per tile; ``cores_per_switch`` cores attach to each
    switch (1 for a Teraflops-style CMP; >1 gives a quasi-mesh).
    ``tile_pitch_mm`` sets inter-switch link lengths for the physical
    models.
    """
    _validate(width, height, cores_per_switch)
    topo = Topology(name or f"mesh{width}x{height}", flit_width=flit_width)
    for y in range(height):
        for x in range(width):
            topo.add_switch(switch_name(x, y), x=x, y=y)
            for k in range(cores_per_switch):
                cname = core_name(x, y, k)
                topo.add_core(cname, x=x, y=y)
                topo.add_link(cname, switch_name(x, y), length_mm=tile_pitch_mm / 4)
    for y in range(height):
        for x in range(width):
            if x + 1 < width:
                topo.add_link(
                    switch_name(x, y), switch_name(x + 1, y), length_mm=tile_pitch_mm
                )
            if y + 1 < height:
                topo.add_link(
                    switch_name(x, y), switch_name(x, y + 1), length_mm=tile_pitch_mm
                )
    return topo


def torus(
    width: int,
    height: int,
    flit_width: int = 32,
    tile_pitch_mm: float = 1.5,
    name: Optional[str] = None,
) -> Topology:
    """Build a 2D torus (mesh plus wraparound links).

    Wraparound channels create ring dependencies: deterministic minimal
    routing on a torus needs two virtual channels with a dateline (the
    deadlock checker in :mod:`repro.topology.deadlock` verifies this).
    Wrap links are modelled at twice the tile pitch (folded torus).
    """
    _validate(width, height, 1)
    if width < 3 or height < 3:
        raise ValueError("torus needs at least 3x3 (wrap links duplicate otherwise)")
    topo = mesh(width, height, flit_width, tile_pitch_mm, name=name or f"torus{width}x{height}")
    for y in range(height):
        topo.add_link(
            switch_name(width - 1, y), switch_name(0, y), length_mm=2 * tile_pitch_mm
        )
    for x in range(width):
        topo.add_link(
            switch_name(x, height - 1), switch_name(x, 0), length_mm=2 * tile_pitch_mm
        )
    return topo


def quasi_mesh(
    width: int,
    height: int,
    cores_at: Sequence[int],
    flit_width: int = 32,
    tile_pitch_mm: float = 1.5,
    name: Optional[str] = None,
) -> Topology:
    """Build a FAUST-style quasi-mesh.

    ``cores_at[i]`` gives the number of cores attached to switch i (in
    row-major order); the FAUST demonstrator attaches 2 cores to some
    routers ("the implemented topology is a quasi-mesh as on some routers
    connect more than one core").
    """
    _validate(width, height, 1)
    if len(cores_at) != width * height:
        raise ValueError(
            f"cores_at must list {width * height} entries, got {len(cores_at)}"
        )
    if any(n < 0 for n in cores_at):
        raise ValueError("core counts must be non-negative")
    if sum(cores_at) == 0:
        raise ValueError("quasi-mesh needs at least one core")
    topo = Topology(name or f"quasimesh{width}x{height}", flit_width=flit_width)
    for y in range(height):
        for x in range(width):
            topo.add_switch(switch_name(x, y), x=x, y=y)
            for k in range(cores_at[y * width + x]):
                cname = core_name(x, y, k)
                topo.add_core(cname, x=x, y=y)
                topo.add_link(cname, switch_name(x, y), length_mm=tile_pitch_mm / 4)
    for y in range(height):
        for x in range(width):
            if x + 1 < width:
                topo.add_link(
                    switch_name(x, y), switch_name(x + 1, y), length_mm=tile_pitch_mm
                )
            if y + 1 < height:
                topo.add_link(
                    switch_name(x, y), switch_name(x, y + 1), length_mm=tile_pitch_mm
                )
    return topo


def _validate(width: int, height: int, cores_per_switch: int) -> None:
    if width < 1 or height < 1:
        raise ValueError("mesh dimensions must be >= 1")
    if width * height < 2:
        raise ValueError("mesh needs at least 2 tiles")
    if cores_per_switch < 1:
        raise ValueError("cores_per_switch must be >= 1")
