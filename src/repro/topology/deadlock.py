"""Deadlock analysis: channel-dependency graphs and message coupling.

The paper makes deadlock freedom a synthesis requirement: "the
synthesized topologies should be free of routing and message-dependent
deadlocks" (Section 2).  Two checks implement that requirement:

* **Routing deadlock** — Dally & Seitz: a deterministic wormhole network
  is deadlock-free iff its channel dependency graph (CDG) is acyclic.
  Channels are (link, virtual-channel) pairs; a dependency arises when a
  route holds one channel while requesting the next.
* **Message-dependent deadlock** — request and response messages that
  share channels can deadlock even with an acyclic CDG when endpoints
  couple them (a blocked response back-pressures request consumption).
  The standard remedies the literature (and the xpipes/Aethereal flows)
  apply are physical or virtual separation of the two message classes;
  the checker verifies one of them holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.topology.graph import NodeKind, RoutingTable, Topology

Channel = Tuple[str, str, int]  # (src node, dst node, virtual channel)


def channel_dependency_graph(
    topo: Topology,
    table: RoutingTable,
    vc_assignment: Optional[Dict[Tuple[str, str], Sequence[int]]] = None,
) -> nx.DiGraph:
    """Build the CDG induced by a routing table.

    ``vc_assignment`` maps (src core, dst core) to the VC index used on
    each hop of that route (see
    :func:`repro.topology.routing.dateline_vc_assignment`); omitted
    routes use VC 0 everywhere.
    """
    cdg = nx.DiGraph()
    for route in table:
        links = route.links()
        vcs = _vcs_for(route.source, route.destination, len(links), vc_assignment)
        channels: List[Channel] = [
            (src, dst, vc) for (src, dst), vc in zip(links, vcs)
        ]
        for ch in channels:
            cdg.add_node(ch)
        for held, wanted in zip(channels, channels[1:]):
            cdg.add_edge(held, wanted)
    return cdg


def _vcs_for(
    src: str,
    dst: str,
    num_links: int,
    vc_assignment: Optional[Dict[Tuple[str, str], Sequence[int]]],
) -> Sequence[int]:
    if vc_assignment is None:
        return [0] * num_links
    vcs = vc_assignment.get((src, dst))
    if vcs is None:
        return [0] * num_links
    if len(vcs) != num_links:
        raise ValueError(
            f"VC assignment for {src!r}->{dst!r} has {len(vcs)} entries, "
            f"route has {num_links} links"
        )
    return vcs


@dataclass
class DeadlockReport:
    """Result of a routing-deadlock check."""

    is_deadlock_free: bool
    cycle: List[Channel] = field(default_factory=list)
    num_channels: int = 0
    num_dependencies: int = 0

    def __bool__(self) -> bool:  # truthy when safe
        return self.is_deadlock_free


def check_routing_deadlock(
    topo: Topology,
    table: RoutingTable,
    vc_assignment: Optional[Dict[Tuple[str, str], Sequence[int]]] = None,
) -> DeadlockReport:
    """Dally-Seitz acyclicity check; returns a witness cycle if any."""
    cdg = channel_dependency_graph(topo, table, vc_assignment)
    try:
        cycle_edges = nx.find_cycle(cdg)
        cycle = [edge[0] for edge in cycle_edges]
        return DeadlockReport(
            is_deadlock_free=False,
            cycle=cycle,
            num_channels=cdg.number_of_nodes(),
            num_dependencies=cdg.number_of_edges(),
        )
    except nx.NetworkXNoCycle:
        return DeadlockReport(
            is_deadlock_free=True,
            num_channels=cdg.number_of_nodes(),
            num_dependencies=cdg.number_of_edges(),
        )


def minimum_vcs_required(
    topo: Topology,
    table: RoutingTable,
    vc_assignments: Sequence[Optional[Dict[Tuple[str, str], Sequence[int]]]],
) -> Optional[int]:
    """Smallest candidate VC assignment (by max VC index) that is safe.

    ``vc_assignments`` is tried in order; returns 1 + max VC index of the
    first assignment whose CDG is acyclic, or None if none works.
    """
    for assignment in vc_assignments:
        if check_routing_deadlock(topo, table, assignment):
            if assignment is None:
                return 1
            top = max((max(v) for v in assignment.values() if v), default=0)
            return top + 1
    return None


# ----------------------------------------------------------------------
# Message-dependent deadlock
# ----------------------------------------------------------------------
@dataclass
class MessageClassReport:
    """Result of the request/response separation check."""

    is_safe: bool
    shared_channels: List[Channel] = field(default_factory=list)
    reason: str = ""

    def __bool__(self) -> bool:
        return self.is_safe


def check_message_dependent_deadlock(
    topo: Topology,
    request_table: RoutingTable,
    response_table: RoutingTable,
    request_vcs: Optional[Dict[Tuple[str, str], Sequence[int]]] = None,
    response_vcs: Optional[Dict[Tuple[str, str], Sequence[int]]] = None,
    sink_guarantees_consumption: bool = False,
) -> MessageClassReport:
    """Verify request/response separation.

    Safe when (a) target NIs always consume requests regardless of the
    response path (``sink_guarantees_consumption`` — the xpipes NI
    design point, which sizes response buffering for the outstanding
    window), or (b) the two message classes share no (link, VC) channel
    — separate physical networks or dedicated VCs per class.  The
    combined single-class CDG must also be acyclic in case (b).
    """

    def channels_of(table: RoutingTable, vcs) -> Set[Channel]:
        out: Set[Channel] = set()
        for route in table:
            links = route.links()
            assigned = _vcs_for(route.source, route.destination, len(links), vcs)
            out.update(
                (src, dst, vc) for (src, dst), vc in zip(links, assigned)
            )
        return out

    if sink_guarantees_consumption:
        return MessageClassReport(
            is_safe=True, reason="sinks guarantee consumption (buffered NIs)"
        )
    req = channels_of(request_table, request_vcs)
    resp = channels_of(response_table, response_vcs)
    shared = sorted(req & resp)
    if shared:
        return MessageClassReport(
            is_safe=False,
            shared_channels=list(shared),
            reason="request and response classes share channels without "
            "consumption guarantees",
        )
    return MessageClassReport(
        is_safe=True, reason="message classes are channel-disjoint"
    )
