"""Topology and routing-table serialization.

Synthesized topologies and their LUT contents are design artifacts the
tool flow hands downstream (simulation, emulation, RTL); this module
round-trips both through plain JSON-compatible dicts and files.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.topology.graph import NodeKind, Route, RoutingTable, Topology


def topology_to_dict(topology: Topology) -> dict:
    """Serialize structure, node attributes and link annotations."""
    nodes = []
    for name in topology.switches + topology.cores:
        attrs = {
            k: v for k, v in topology.node_attrs(name).items() if k != "kind"
        }
        nodes.append(
            {
                "name": name,
                "kind": topology.kind(name).value,
                "attrs": attrs,
            }
        )
    links = []
    for src, dst in topology.links:
        a = topology.link_attrs(src, dst)
        links.append(
            {
                "src": src,
                "dst": dst,
                "length_mm": a.length_mm,
                "pipeline_stages": a.pipeline_stages,
                "width_bits": a.width_bits,
            }
        )
    return {
        "name": topology.name,
        "flit_width": topology.flit_width,
        "nodes": nodes,
        "links": links,
    }


def topology_from_dict(data: dict) -> Topology:
    try:
        topo = Topology(data["name"], flit_width=data["flit_width"])
        for node in data["nodes"]:
            attrs = {
                k: (tuple(v) if isinstance(v, list) else v)
                for k, v in node.get("attrs", {}).items()
            }
            if node["kind"] == NodeKind.SWITCH.value:
                topo.add_switch(node["name"], **attrs)
            elif node["kind"] == NodeKind.CORE.value:
                topo.add_core(node["name"], **attrs)
            else:
                raise ValueError(f"unknown node kind {node['kind']!r}")
        for link in data["links"]:
            topo.add_link(
                link["src"],
                link["dst"],
                length_mm=link.get("length_mm", 0.0),
                pipeline_stages=link.get("pipeline_stages", 0),
                width_bits=link.get("width_bits"),
                bidirectional=False,
            )
    except KeyError as exc:
        raise ValueError(f"topology data missing field: {exc}") from None
    return topo


def routing_table_to_dict(table: RoutingTable) -> dict:
    return {
        "routes": [list(route.path) for route in table],
    }


def routing_table_from_dict(data: dict, topology: Topology) -> RoutingTable:
    table = RoutingTable(topology)
    try:
        for path in data["routes"]:
            table.set_route(Route(tuple(path)))
    except KeyError as exc:
        raise ValueError(f"routing data missing field: {exc}") from None
    return table


def save_design(
    topology: Topology,
    table: RoutingTable,
    path: Union[str, Path],
) -> None:
    """Write topology + routes as one JSON file."""
    blob = {
        "topology": topology_to_dict(topology),
        "routing": routing_table_to_dict(table),
    }
    Path(path).write_text(json.dumps(blob, indent=2) + "\n")


def load_design(path: Union[str, Path]):
    """Read (topology, routing table) back from :func:`save_design`."""
    blob = json.loads(Path(path).read_text())
    topo = topology_from_dict(blob["topology"])
    table = routing_table_from_dict(blob["routing"], topo)
    return topo, table
