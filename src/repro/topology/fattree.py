"""k-ary n-tree (fat tree) generator — the SPIN topology.

SPIN [3], the earliest NoC architecture the paper credits, used "a
regular, fat-tree-based network".  We implement the standard k-ary
n-tree construction (Petrini & Vanneschi):

* n switch levels; level 0 is the leaf level, level n-1 the root level;
* each level has k^(n-1) switches, identified by ``(level, w)`` with
  ``w`` a word of n-1 digits base k;
* switch ``(l, w)`` connects upward to ``(l+1, w')`` iff ``w`` and
  ``w'`` agree on every digit except (possibly) digit ``l``;
* processing node ``p = (p_0 ... p_{n-1})`` attaches to the level-0
  switch ``(0, (p_0 ... p_{n-2}))``.

Up*/down* routing on this structure is deadlock-free: every route
ascends to the least common ancestor level, then descends (see
:func:`repro.topology.routing.fat_tree_routing`).
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

from repro.topology.graph import Topology


def switch_name(level: int, w: Tuple[int, ...]) -> str:
    return f"s_{level}_" + "".join(str(d) for d in w)


def core_name(p: Tuple[int, ...]) -> str:
    return "c_" + "".join(str(d) for d in p)


def fat_tree(
    arity: int,
    levels: int,
    flit_width: int = 32,
    link_length_mm: float = 1.0,
    name: Optional[str] = None,
) -> Topology:
    """Build a ``arity``-ary ``levels``-tree with ``arity**levels`` cores.

    Link lengths double per level, reflecting the physical span of upper
    tree levels on-chip.
    """
    if arity < 2:
        raise ValueError("arity must be >= 2")
    if levels < 1:
        raise ValueError("levels must be >= 1")
    if arity**levels > 4096:
        raise ValueError("fat tree too large (arity**levels > 4096 cores)")

    k, n = arity, levels
    topo = Topology(name or f"fattree_k{k}_n{n}", flit_width=flit_width)
    words = list(itertools.product(range(k), repeat=n - 1))
    for level in range(n):
        for w in words:
            topo.add_switch(switch_name(level, w), level=level, w=w)
    # Cores attach below level 0.
    for p in itertools.product(range(k), repeat=n):
        cname = core_name(p)
        topo.add_core(cname, address=p)
        topo.add_link(cname, switch_name(0, p[: n - 1]), length_mm=link_length_mm / 2)
    # Inter-level links.
    for level in range(n - 1):
        length = link_length_mm * (2**level)
        for w in words:
            for digit in range(k):
                w_up = w[:level] + (digit,) + w[level + 1:]
                topo.add_link(
                    switch_name(level, w),
                    switch_name(level + 1, w_up),
                    length_mm=length,
                )
    return topo
